/**
 * @file
 * Unit tests of the pass-pipeline backbone: PassManager ordering and
 * timing, CompileContext distance memoization, and the standard
 * pipeline TqanCompiler assembles.
 */

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/pass.h"
#include "core/passes.h"
#include "device/devices.h"
#include "ham/models.h"
#include "ham/trotter.h"

using namespace tqan;
using namespace tqan::core;

namespace {

/** Records its execution into a shared log. */
class RecordingPass : public Pass
{
  public:
    RecordingPass(std::string name, std::vector<std::string> *log)
        : name_(std::move(name)), log_(log)
    {
    }
    std::string name() const override { return name_; }
    void run(CompileContext &) const override
    {
        log_->push_back(name_);
    }

  private:
    std::string name_;
    std::vector<std::string> *log_;
};

std::unique_ptr<Pass>
recording(const std::string &name, std::vector<std::string> *log)
{
    return std::unique_ptr<Pass>(new RecordingPass(name, log));
}

} // namespace

TEST(PassManager, RunsPassesInInsertionOrderAndTimesEach)
{
    std::vector<std::string> log;
    PassManager pm;
    pm.add(recording("alpha", &log))
        .add(recording("beta", &log))
        .add(recording("gamma", &log));
    EXPECT_EQ(pm.passNames(),
              (std::vector<std::string>{"alpha", "beta", "gamma"}));

    CompileContext ctx(qcir::Circuit(2), device::line(2), 1);
    auto times = pm.run(ctx);

    EXPECT_EQ(log, (std::vector<std::string>{"alpha", "beta",
                                             "gamma"}));
    ASSERT_EQ(times.size(), 3u);
    for (size_t i = 0; i < times.size(); ++i) {
        EXPECT_EQ(times[i].pass, log[i]);
        EXPECT_GE(times[i].seconds, 0.0);
    }
}

TEST(PassManager, RejectsNullPass)
{
    PassManager pm;
    EXPECT_THROW(pm.add(nullptr), std::invalid_argument);
}

TEST(PassManager, PassSecondsSumsMatchingEntries)
{
    std::vector<PassTiming> times{{"mapping", 1.0},
                                  {"routing", 2.0},
                                  {"mapping", 0.5}};
    EXPECT_DOUBLE_EQ(passSeconds(times, "mapping"), 1.5);
    EXPECT_DOUBLE_EQ(passSeconds(times, "routing"), 2.0);
    EXPECT_DOUBLE_EQ(passSeconds(times, "scheduling"), 0.0);
}

TEST(CompileContext, DistancesAreMemoizedHopCounts)
{
    device::Topology topo = device::line(5);
    CompileContext ctx(qcir::Circuit(3), topo, 9);
    const auto &d1 = ctx.distances();
    const auto &d2 = ctx.distances();
    EXPECT_EQ(&d1, &d2);  // memoized, not recomputed
    for (int p = 0; p < 5; ++p)
        for (int q = 0; q < 5; ++q)
            EXPECT_DOUBLE_EQ(d1[p][q], topo.dist(p, q));
}

TEST(CompileContext, DistancesUseNoiseMapWhenAttached)
{
    device::Topology topo = device::montreal27();
    std::mt19937_64 rng(11);
    auto nm = std::make_shared<device::NoiseMap>(
        device::NoiseMap::synthetic(topo, rng));

    CompileContext ctx(qcir::Circuit(4), topo, 9);
    ctx.noiseMap = nm;
    ctx.noiseLambda = 1.5;
    EXPECT_EQ(ctx.distances(), nm->noiseAwareDistances(1.5));
}

TEST(Compiler, StandardPipelineShape)
{
    CompilerOptions opt;
    TqanCompiler comp(device::line(4), opt);
    EXPECT_EQ(comp.buildPipeline().passNames(),
              (std::vector<std::string>{"unify", "mapping", "routing",
                                        "scheduling"}));

    CompilerOptions bare = opt;
    bare.unifyCircuit = false;
    TqanCompiler comp2(device::line(4), bare);
    EXPECT_EQ(comp2.buildPipeline().passNames(),
              (std::vector<std::string>{"mapping", "routing",
                                        "scheduling"}));
}

TEST(Compiler, CompileReportsPerPassTimes)
{
    std::mt19937_64 rng(31);
    auto h = ham::nnnHeisenberg(8, rng);
    CompilerOptions opt;
    opt.seed = 32;
    TqanCompiler comp(device::grid(3, 3), opt);
    auto res = comp.compile(ham::trotterStep(h, 1.0));

    ASSERT_EQ(res.passTimes.size(), 4u);
    EXPECT_EQ(res.passTimes[0].pass, "unify");
    EXPECT_EQ(res.passTimes[3].pass, "scheduling");
    EXPECT_DOUBLE_EQ(res.mappingSeconds,
                     passSeconds(res.passTimes, "mapping"));
    EXPECT_DOUBLE_EQ(res.routingSeconds,
                     passSeconds(res.passTimes, "routing"));
    EXPECT_DOUBLE_EQ(res.schedulingSeconds,
                     passSeconds(res.passTimes, "scheduling"));
}

TEST(Compiler, MapperKindNamesMatchRegistry)
{
    EXPECT_EQ(mapperKindName(MapperKind::Tabu), "tabu");
    EXPECT_EQ(mapperKindName(MapperKind::Anneal), "anneal");
    EXPECT_EQ(mapperKindName(MapperKind::Greedy), "greedy");
    EXPECT_EQ(mapperKindName(MapperKind::Line), "line");
    EXPECT_EQ(mapperKindName(MapperKind::Identity), "identity");
}
