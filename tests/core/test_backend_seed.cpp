/**
 * @file
 * Pins the seed contract documented on CompileJob, driven by the
 * BackendInfo capability descriptors: every backend is reproducible
 * (same seed -> bit-identical result), backends declaring
 * seedSensitive actually respond to the seed, and the rest are
 * seed-invariant.  If a backend's behavior changes class, update its
 * info() override in core/backend.cpp together with the CompileJob
 * comment.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/backend.h"
#include "core/router_registry.h"
#include "core/sweep.h"
#include "device/devices.h"

using namespace tqan;

namespace {

/** A mid-size chain instance: big enough that randomized placement
 * and routing have room to differ between seeds. */
const core::SweepUnit &
chainUnit()
{
    static const core::SweepUnit unit = core::buildSweepUnit(
        core::Benchmark::NnnHeisenberg, 10, 0, /*baseSeed=*/0);
    return unit;
}

/** IC-QAOA only accepts ZZ-only circuits. */
const core::SweepUnit &
qaoaUnit()
{
    static const core::SweepUnit unit = core::buildSweepUnit(
        core::Benchmark::QaoaReg3, 10, 0, /*baseSeed=*/0);
    return unit;
}

const device::Topology &
topo()
{
    static const device::Topology t = device::grid(4, 4);
    return t;
}

const core::SweepUnit &
unitFor(const std::string &backend)
{
    return core::backendByName(backend).info().diagonalOnly
               ? qaoaUnit()
               : chainUnit();
}

/** Everything observable about a compile, as one comparable blob. */
std::string
fingerprint(const std::string &backend, std::uint64_t seed,
            int mapperTrials = 5)
{
    const core::SweepUnit &u = unitFor(backend);
    core::CompileJob job;
    job.step = u.step.get();
    job.hamiltonian = u.hamiltonian.get();
    job.options.seed = seed;
    job.options.mapperTrials = mapperTrials;
    auto res = core::backendByName(backend).compile(job, topo());
    std::string fp = res.sched.deviceCircuit.str();
    for (int q : res.sched.initialMap)
        fp += "," + std::to_string(q);
    fp += "|s" + std::to_string(res.sched.swapCount);
    return fp;
}

} // namespace

TEST(BackendSeed, EveryBackendIsReproducible)
{
    for (const std::string &be : core::backendNames()) {
        SCOPED_TRACE(be);
        EXPECT_EQ(fingerprint(be, 7), fingerprint(be, 7));
        EXPECT_EQ(fingerprint(be, 12345), fingerprint(be, 12345));
    }
}

TEST(BackendSeed, SeedSensitiveBackendsRespondToTheSeed)
{
    bool any = false;
    for (const std::string &be : core::backendNames()) {
        if (!core::backendByName(be).info().seedSensitive)
            continue;
        any = true;
        SCOPED_TRACE(be);
        // One mapper trial for the 2qan pipelines (those whose
        // info().router is a registered core router): best-of-5
        // hides the per-trial randomness on instances this small.
        int trials =
            core::hasRouter(core::backendByName(be).info().router)
                ? 1
                : 5;
        std::set<std::string> distinct;
        for (std::uint64_t seed = 0; seed < 8; ++seed)
            distinct.insert(fingerprint(be, seed, trials));
        EXPECT_GT(distinct.size(), 1u)
            << be << " produced the same result for 8 seeds; if it "
            << "became deterministic, flip seedSensitive in its "
            << "info() override in core/backend.cpp";
    }
    EXPECT_TRUE(any);
}

TEST(BackendSeed, SeedInvariantBackendsIgnoreTheSeed)
{
    bool any = false;
    for (const std::string &be : core::backendNames()) {
        if (core::backendByName(be).info().seedSensitive)
            continue;
        any = true;
        SCOPED_TRACE(be);
        std::string ref = fingerprint(be, 0);
        for (std::uint64_t seed : {1ull, 42ull, 0xFFFFFFFFull})
            EXPECT_EQ(ref, fingerprint(be, seed))
                << be << " changed output with the seed; if it "
                << "gained randomization, flip seedSensitive in its "
                << "info() override in core/backend.cpp";
    }
    EXPECT_TRUE(any);
}
