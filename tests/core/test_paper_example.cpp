/**
 * @file
 * The paper's worked example (Fig. 3 / Fig. 6): a 6-qubit 2-local
 * Hamiltonian on a 2x3 grid.
 *
 * Reconstruction from the figure: under the initial map
 *   locations (row major): q0 q3 q2 / q5 q1 q4
 * seven interactions are nearest-neighbour -- (0,3), (2,3), (1,5),
 * (1,4), (0,5), (1,3), (2,4) -- and two are not: (0,2) and (4,5).
 * The paper's 2QAN run inserts 2 SWAPs, both merged with circuit
 * gates (dressed), for a compiled circuit of 9 two-qubit unitaries
 * (vs. 12 for the generic compiler) and depth 5 (vs. 7).
 */

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/metrics.h"
#include "device/devices.h"
#include "ham/trotter.h"

using namespace tqan;
using namespace tqan::core;

namespace {

ham::TwoLocalHamiltonian
exampleHamiltonian()
{
    ham::TwoLocalHamiltonian h(6);
    const std::pair<int, int> edges[] = {
        {0, 3}, {2, 3}, {1, 5}, {1, 4}, {0, 5},
        {1, 3}, {2, 4}, {0, 2}, {4, 5},
    };
    double coeff = 0.3;
    for (const auto &[u, v] : edges)
        h.addPair(u, v, 0.0, 0.0, coeff += 0.05);
    for (int q = 0; q < 6; ++q)
        h.addField(q, ham::Axis::X, 0.4);
    return h;
}

/** The figure's initial map: logical -> grid location. */
qap::Placement
figureMap()
{
    // locations: 0 1 2 / 3 4 5; logical occupants 0 3 2 / 5 1 4.
    return {0, 4, 2, 1, 5, 3};
}

} // namespace

TEST(PaperExample, TwoDressedSwapsAndNineGates)
{
    auto h = exampleHamiltonian();
    device::Topology topo = device::grid(2, 3);
    qcir::Circuit step = ham::trotterStep(h, 1.0);

    std::mt19937_64 rng(71);
    auto routing =
        routePermutationAware(step, figureMap(), topo, rng);
    EXPECT_TRUE(routingIsValid(step, topo, routing));
    EXPECT_EQ(routing.swapCount(), 2);
    EXPECT_EQ(routing.dressedCount(), 2);

    auto sched = scheduleHybridAlap(step, topo, routing);
    EXPECT_TRUE(scheduleIsValid(step, topo, sched));
    // 7 NN circuit gates + 2 dressed SWAPs = 9 two-qubit unitaries.
    EXPECT_EQ(sched.deviceCircuit.twoQubitCount(), 9);
    // Paper: scheduled depth 5 (here: two-qubit cycles <= 5).
    EXPECT_LE(sched.twoQubitDepth(), 5);
    EXPECT_GE(sched.twoQubitDepth(), 3);
}

TEST(PaperExample, GenericCompilationIsWorse)
{
    auto h = exampleHamiltonian();
    device::Topology topo = device::grid(2, 3);
    qcir::Circuit step = ham::trotterStep(h, 1.0);

    std::mt19937_64 rng(72);
    // Generic pipeline: no SWAP unifying, order-respecting schedule.
    RouterOptions ropt;
    ropt.unifySwaps = false;
    auto routing =
        routePermutationAware(step, figureMap(), topo, rng, ropt);
    auto sched = scheduleGenericAlap(step, topo, routing);
    EXPECT_TRUE(scheduleIsValid(step, topo, sched));

    // Without unifying, SWAPs stay separate unitaries: > 9 gates.
    EXPECT_GE(sched.deviceCircuit.twoQubitCount(), 11);
}

TEST(PaperExample, FullCompilerPipelineMatches)
{
    auto h = exampleHamiltonian();
    device::Topology topo = device::grid(2, 3);
    CompilerOptions opt;
    opt.seed = 73;
    TqanCompiler comp(topo, opt);
    auto res = comp.compile(ham::trotterStep(h, 1.0));
    EXPECT_TRUE(scheduleIsValid(
        qcir::unifySamePairInteractions(ham::trotterStep(h, 1.0)),
        topo, res.sched));
    // The QAP mapper should find a placement at least as good as the
    // figure's: at most 2 SWAPs.
    EXPECT_LE(res.sched.swapCount, 2);

    auto m = computeMetrics(res.sched, ham::trotterStep(h, 1.0),
                            device::GateSet::Cnot);
    EXPECT_EQ(m.native2qNoMap, 2 * 9);  // 9 ZZ ops x 2 CNOTs
    EXPECT_GE(m.native2q, m.native2qNoMap);
}
