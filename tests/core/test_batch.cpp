/**
 * @file
 * Property tests for the batch compilation engine: results are
 * bit-identical for any thread count and any job submission order,
 * per-job failures stay contained, and the per-topology distance
 * memo hands every job the same matrix.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>

#include "core/batch.h"
#include "core/sweep.h"
#include "device/devices.h"

using namespace tqan;
using core::BatchCompiler;
using core::BatchJob;
using core::BatchJobResult;

namespace {

core::SweepSpec
smallSpec()
{
    core::SweepSpec s;
    s.experiment = "batchtest";
    s.benchmarks = {core::Benchmark::NnnHeisenberg,
                    core::Benchmark::NnnXY,
                    core::Benchmark::QaoaReg3};
    s.devices = {{"grid:3x3", ""}, {"line:9", ""}};
    s.backends = {"2qan", "qiskit_sabre", "tket_like"};
    s.sizes = {6, 8};
    s.trials = 2;
    return s;
}

std::vector<std::string>
csvRows(const std::vector<core::SweepRow> &rows)
{
    std::vector<std::string> out;
    for (const auto &r : rows)
        out.push_back(core::toCsv(r));
    return out;
}

} // namespace

TEST(ThreadPool, RunsEveryTaskAcrossWaitCycles)
{
    core::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count]() { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 50 * (round + 1));
    }
}

TEST(ThreadPool, SingleThreadedRunsInline)
{
    core::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 0);  // no workers: submit() runs inline
    int count = 0;
    pool.submit([&count]() { ++count; });
    EXPECT_EQ(count, 1);
    pool.wait();
}

TEST(BatchCompiler, SameSweepIdenticalForJobs1And8)
{
    BatchCompiler seq({1});
    BatchCompiler par({8});
    auto rows1 = core::runSweep(smallSpec(), seq);
    auto rows8 = core::runSweep(smallSpec(), par);
    ASSERT_FALSE(rows1.empty());
    for (const auto &r : rows1)
        EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(csvRows(rows1), csvRows(rows8));
}

TEST(BatchCompiler, ShuffledJobOrderGivesIdenticalPerJobResults)
{
    core::ExpandedSweep ex = core::expandSweep(smallSpec());
    // Tags are unique per job in a sweep expansion.
    {
        std::vector<std::string> tags;
        for (const auto &j : ex.jobs)
            tags.push_back(j.tag);
        std::sort(tags.begin(), tags.end());
        ASSERT_EQ(std::unique(tags.begin(), tags.end()),
                  tags.end());
    }

    BatchCompiler bc({4});
    std::vector<BatchJobResult> ordered = bc.run(ex.jobs);

    std::vector<BatchJob> shuffled = ex.jobs;
    std::mt19937_64 rng(99);
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    std::vector<BatchJobResult> permuted = bc.run(shuffled);

    auto byTag = [](const std::vector<BatchJobResult> &rs) {
        std::map<std::string, const BatchJobResult *> m;
        for (const auto &r : rs)
            m[r.tag] = &r;
        return m;
    };
    auto a = byTag(ordered), b = byTag(permuted);
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[tag, ra] : a) {
        SCOPED_TRACE(tag);
        const BatchJobResult *rb = b.at(tag);
        ASSERT_TRUE(ra->ok());
        ASSERT_TRUE(rb->ok());
        EXPECT_EQ(ra->result.sched.deviceCircuit.str(),
                  rb->result.sched.deviceCircuit.str());
        EXPECT_EQ(ra->result.sched.initialMap,
                  rb->result.sched.initialMap);
        EXPECT_EQ(ra->metrics.swaps, rb->metrics.swaps);
        EXPECT_EQ(ra->metrics.native2q, rb->metrics.native2q);
        EXPECT_EQ(ra->metrics.depth2q, rb->metrics.depth2q);
    }
}

TEST(BatchCompiler, PerJobFailuresStayContained)
{
    core::ExpandedSweep ex = core::expandSweep(smallSpec());
    ASSERT_GE(ex.jobs.size(), 3u);
    std::vector<BatchJob> jobs(ex.jobs.begin(),
                               ex.jobs.begin() + 3);
    jobs[0].backend = "no_such_backend";
    jobs[1].job.step = nullptr;  // 2qan requires a step circuit
    jobs[1].backend = "2qan";

    BatchCompiler bc({2});
    auto results = bc.run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("no_such_backend"),
              std::string::npos);
    EXPECT_FALSE(results[1].ok());
    EXPECT_TRUE(results[2].ok()) << results[2].error;
}

TEST(BatchCompiler, DistanceMatrixIsMemoizedPerTopology)
{
    BatchCompiler bc({1});
    auto d1 = [&bc]() {
        // Scoped on purpose: the cache must not dangle on the
        // address of a dead Topology (it is keyed structurally).
        device::Topology g1 = device::grid(3, 3);
        auto d = bc.distancesFor(g1);
        EXPECT_EQ(d.get(), bc.distancesFor(g1).get());
        return d;
    }();
    ASSERT_EQ(d1->rows(), 9);
    EXPECT_DOUBLE_EQ((*d1)[0][8], 4.0);

    // A freshly built equal topology shares the cached matrix; a
    // structurally different one gets its own.
    device::Topology g2 = device::grid(3, 3);
    EXPECT_EQ(bc.distancesFor(g2).get(), d1.get());
    device::Topology other = device::line(9);
    EXPECT_NE(bc.distancesFor(other).get(), d1.get());
    // Same shape but different couplings: grid(3,3) vs ring(9).
    device::Topology ring9 = device::ring(9);
    EXPECT_NE(bc.distancesFor(ring9).get(), d1.get());
}
