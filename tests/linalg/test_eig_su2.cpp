/**
 * @file
 * Unit tests for the Jacobi eigensolver and SU(2) utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/eig.h"
#include "linalg/su2.h"

using namespace tqan::linalg;

namespace {

Mat2
randomSu2(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    return rz(ang(rng)) * ry(ang(rng)) * rz(ang(rng));
}

} // namespace

TEST(JacobiEig, DiagonalInput)
{
    RMat4 a{};
    a[0] = 3.0;
    a[5] = -1.0;
    a[10] = 2.0;
    a[15] = 0.5;
    std::array<double, 4> w;
    RMat4 v;
    EXPECT_TRUE(jacobiEig4(a, w, v));
    std::array<double, 4> sorted = w;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_NEAR(sorted[0], -1.0, 1e-12);
    EXPECT_NEAR(sorted[3], 3.0, 1e-12);
}

TEST(JacobiEig, RandomSymmetricReconstruction)
{
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> val(-2.0, 2.0);
    for (int trial = 0; trial < 30; ++trial) {
        RMat4 a{};
        for (int i = 0; i < 4; ++i)
            for (int j = i; j < 4; ++j)
                a[i * 4 + j] = a[j * 4 + i] = val(rng);

        std::array<double, 4> w;
        RMat4 v;
        ASSERT_TRUE(jacobiEig4(a, w, v));

        // A = V^T diag(w) V.
        RMat4 d{};
        for (int i = 0; i < 4; ++i)
            d[i * 4 + i] = w[i];
        RMat4 recon = rmul(rmul(rtranspose(v), d), v);
        for (int i = 0; i < 16; ++i)
            EXPECT_NEAR(recon[i], a[i], 1e-9);

        // V orthogonal.
        RMat4 vvt = rmul(v, rtranspose(v));
        RMat4 id = ridentity();
        for (int i = 0; i < 16; ++i)
            EXPECT_NEAR(vvt[i], id[i], 1e-10);
    }
}

TEST(JacobiEig, DeterminantOfOrthogonal)
{
    std::mt19937_64 rng(12);
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    RMat4 a{};
    for (int i = 0; i < 4; ++i)
        for (int j = i; j < 4; ++j)
            a[i * 4 + j] = a[j * 4 + i] = val(rng);
    std::array<double, 4> w;
    RMat4 v;
    ASSERT_TRUE(jacobiEig4(a, w, v));
    EXPECT_NEAR(std::abs(rdet(v)), 1.0, 1e-10);
}

TEST(Zyz, RoundTripRandomUnitaries)
{
    std::mt19937_64 rng(13);
    for (int i = 0; i < 100; ++i) {
        Mat2 u = randomSu2(rng) * std::exp(Cx(0.0, 0.3 * i));
        Zyz d = zyzDecompose(u);
        EXPECT_LT(zyzReconstruct(d).distance(u), 1e-10)
            << "trial " << i;
    }
}

TEST(Zyz, DiagonalEdgeCase)
{
    Zyz d = zyzDecompose(rz(0.7));
    EXPECT_LT(zyzReconstruct(d).distance(rz(0.7)), 1e-12);
    EXPECT_NEAR(d.beta, 0.0, 1e-12);
}

TEST(Zyz, AntiDiagonalEdgeCase)
{
    Zyz d = zyzDecompose(pauliX());
    EXPECT_LT(zyzReconstruct(d).distance(pauliX()), 1e-12);
    EXPECT_NEAR(d.beta, M_PI, 1e-12);
}

TEST(KronFactor, RoundTrip)
{
    std::mt19937_64 rng(14);
    for (int i = 0; i < 100; ++i) {
        Mat2 a = randomSu2(rng), b = randomSu2(rng);
        Mat4 u = kron(a, b) * std::exp(Cx(0.0, 0.1 * i));
        Mat2 fa, fb;
        double resid = kronFactor(u, fa, fb);
        EXPECT_LT(resid, 1e-10);
        EXPECT_LT(phaseDistance(kron(fa, fb), u), 1e-10);
        // Factors match the originals up to phase.
        EXPECT_LT(phaseDistance(fa, a), 1e-9);
        EXPECT_LT(phaseDistance(fb, b), 1e-9);
    }
}

TEST(KronFactor, NonProductHasLargeResidual)
{
    Mat2 a, b;
    double resid = kronFactor(cnot(0, 1), a, b);
    EXPECT_GT(resid, 0.1);
}
