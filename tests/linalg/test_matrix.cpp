/**
 * @file
 * Unit tests for the small complex matrix layer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/matrix.h"

using namespace tqan::linalg;

namespace {

Mat2
randomSu2(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    return rz(ang(rng)) * ry(ang(rng)) * rz(ang(rng));
}

} // namespace

TEST(Mat2, IdentityAndMultiply)
{
    Mat2 i = Mat2::identity();
    Mat2 x = pauliX();
    EXPECT_LT((i * x).distance(x), 1e-12);
    EXPECT_LT((x * x).distance(i), 1e-12);
}

TEST(Mat2, PauliAlgebra)
{
    // XY = iZ, YZ = iX, ZX = iY.
    Cx im(0.0, 1.0);
    EXPECT_LT((pauliX() * pauliY()).distance(pauliZ() * im), 1e-12);
    EXPECT_LT((pauliY() * pauliZ()).distance(pauliX() * im), 1e-12);
    EXPECT_LT((pauliZ() * pauliX()).distance(pauliY() * im), 1e-12);
}

TEST(Mat2, RotationsAreUnitary)
{
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    for (int i = 0; i < 50; ++i) {
        double t = ang(rng);
        EXPECT_TRUE(rx(t).isUnitary());
        EXPECT_TRUE(ry(t).isUnitary());
        EXPECT_TRUE(rz(t).isUnitary());
    }
}

TEST(Mat2, HadamardSquaresToIdentity)
{
    EXPECT_LT((hadamard() * hadamard()).distance(Mat2::identity()),
              1e-12);
}

TEST(Mat2, SGateIsSqrtZ)
{
    EXPECT_LT((sGate() * sGate()).distance(pauliZ()), 1e-12);
    EXPECT_LT((sGate() * sDagGate()).distance(Mat2::identity()),
              1e-12);
}

TEST(Mat2, DetAndTrace)
{
    Mat2 z = pauliZ();
    EXPECT_NEAR(std::abs(z.det() + 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(z.trace()), 0.0, 1e-12);
}

TEST(Mat4, CnotMatrixEntries)
{
    // Control = qubit 0 (LSB): |01> -> |11>, |11> -> |01>.
    Mat4 c = cnot(0, 1);
    EXPECT_NEAR(std::abs(c.at(0, 0) - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(c.at(3, 1) - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(c.at(1, 3) - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(c.at(2, 2) - 1.0), 0.0, 1e-12);
    EXPECT_TRUE(c.isUnitary());
}

TEST(Mat4, CnotConjugationRules)
{
    // CNOT(c=0, t=1): X_0 -> X_0 X_1 and Z_1 -> Z_0 Z_1.
    Mat4 c = cnot(0, 1);
    Mat4 x0 = kron(pauliI(), pauliX());
    Mat4 xx = kron(pauliX(), pauliX());
    EXPECT_LT((c * x0 * c).distance(xx), 1e-12);
    Mat4 z1 = kron(pauliZ(), pauliI());
    Mat4 zz = kron(pauliZ(), pauliZ());
    EXPECT_LT((c * z1 * c).distance(zz), 1e-12);
}

TEST(Mat4, SwapFromThreeCnots)
{
    Mat4 s = cnot(0, 1) * cnot(1, 0) * cnot(0, 1);
    EXPECT_LT(s.distance(swapGate()), 1e-12);
}

TEST(Mat4, IswapSquaredIsZz)
{
    Mat4 zz = kron(pauliZ(), pauliZ());
    EXPECT_LT((iswapGate() * iswapGate()).distance(zz), 1e-12);
}

TEST(Mat4, SycIsUnitary)
{
    EXPECT_TRUE(sycGate().isUnitary());
    // fSim(pi/2, pi/6): |11> phase is e^{-i pi/6}.
    EXPECT_NEAR(std::arg(sycGate().at(3, 3)), -M_PI / 6.0, 1e-12);
}

TEST(Mat4, KronStructure)
{
    std::mt19937_64 rng(2);
    Mat2 a = randomSu2(rng), b = randomSu2(rng);
    Mat4 k = kron(a, b);
    EXPECT_TRUE(k.isUnitary());
    // Block (i1, j1) equals a[i1][j1] * b.
    for (int i1 = 0; i1 < 2; ++i1)
        for (int j1 = 0; j1 < 2; ++j1)
            for (int i0 = 0; i0 < 2; ++i0)
                for (int j0 = 0; j0 < 2; ++j0)
                    EXPECT_NEAR(
                        std::abs(k.at(i1 * 2 + i0, j1 * 2 + j0) -
                                 a.at(i1, j1) * b.at(i0, j0)),
                        0.0, 1e-12);
}

TEST(Mat4, PhaseDistanceIgnoresGlobalPhase)
{
    std::mt19937_64 rng(3);
    Mat4 u = kron(randomSu2(rng), randomSu2(rng));
    Mat4 v = u * std::exp(Cx(0.0, 1.234));
    EXPECT_GT(u.distance(v), 0.1);
    EXPECT_LT(phaseDistance(u, v), 1e-10);
}

TEST(ExpXxYyZz, PureZzMatchesCnotConjugation)
{
    // exp(i c ZZ) = CNOT (I x Rz(-2c))? with our conventions:
    // CNOT(0,1) Rz_1(-2c) CNOT(0,1) where Rz_1 acts on qubit 1.
    double c = 0.37;
    Mat4 direct = expXxYyZz(0.0, 0.0, c);
    Mat4 built =
        cnot(0, 1) * kron(rz(-2.0 * c), pauliI()) * cnot(0, 1);
    EXPECT_LT(phaseDistance(direct, built), 1e-12);
}

TEST(ExpXxYyZz, SwapClassAtQuarterPi)
{
    // exp(i pi/4 (XX + YY + ZZ)) is the SWAP up to global phase.
    Mat4 u = expXxYyZz(M_PI / 4, M_PI / 4, M_PI / 4);
    EXPECT_LT(phaseDistance(u, swapGate()), 1e-10);
}

TEST(ExpXxYyZz, FactorsCommute)
{
    Mat4 a = expXxYyZz(0.3, 0.0, 0.0);
    Mat4 b = expXxYyZz(0.0, 0.5, 0.0);
    Mat4 c = expXxYyZz(0.0, 0.0, 0.7);
    Mat4 abc = expXxYyZz(0.3, 0.5, 0.7);
    EXPECT_LT((a * b * c).distance(abc), 1e-12);
    EXPECT_LT((c * a * b).distance(abc), 1e-12);
}

TEST(ExpXxYyZz, UnitaryForRandomCoefficients)
{
    std::mt19937_64 rng(4);
    std::uniform_real_distribution<double> coeff(-4.0, 4.0);
    for (int i = 0; i < 50; ++i) {
        Mat4 u = expXxYyZz(coeff(rng), coeff(rng), coeff(rng));
        EXPECT_TRUE(u.isUnitary());
    }
}

TEST(ExpXxYyZz, CommutesWithSwap)
{
    Mat4 u = expXxYyZz(0.3, 0.5, 0.7);
    Mat4 s = swapGate();
    EXPECT_LT((u * s).distance(s * u), 1e-12);
}

TEST(MagicBasis, IsUnitary)
{
    EXPECT_TRUE(magicBasis().isUnitary());
}

TEST(MagicBasis, DiagonalizesInteractions)
{
    // B^dag exp(i(a XX + b YY + c ZZ)) B must be diagonal.
    Mat4 b = magicBasis();
    Mat4 u = expXxYyZz(0.21, 0.43, 0.65);
    Mat4 d = b.dagger() * u * b;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i != j) {
                EXPECT_NEAR(std::abs(d.at(i, j)), 0.0, 1e-12);
            }
        }
    }
}
