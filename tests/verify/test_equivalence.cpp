/**
 * @file
 * Unit tests of the unitary-equivalence oracle: positive cases
 * (identity, permutation embedding, global phase, decomposition),
 * negative cases (angle/coefficient corruption, dropped gates, wrong
 * final map, junk on unmapped qubits), both oracle modes, and the
 * engine-attachment invariance.
 */

#include <gtest/gtest.h>

#include <random>

#include "decomp/pass.h"
#include "linalg/matrix.h"
#include "sim/engine.h"
#include "verify/equivalence.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;
using verify::CheckMode;
using verify::EquivalenceChecker;
using verify::EquivalenceOptions;
using verify::EquivalenceReport;

namespace {

/** A small non-trivial application-level circuit. */
Circuit
sampleCircuit(int n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> d(0.1, 1.4);
    Circuit c(n);
    for (int q = 0; q + 1 < n; ++q)
        c.add(Op::interact(q, q + 1, d(rng), d(rng), d(rng)));
    for (int q = 0; q < n; ++q)
        c.add(Op::rx(q, d(rng)));
    if (n >= 3)
        c.add(Op::interact(0, 2, d(rng), 0.0, d(rng)));
    return c;
}

/** Embed a logical circuit on a larger register via a map. */
Circuit
embedded(const Circuit &c, const qap::Placement &map, int devQubits)
{
    Circuit out(devQubits);
    for (const auto &o : c.ops()) {
        Op m = o;
        m.q0 = map[o.q0];
        if (o.q1 >= 0)
            m.q1 = map[o.q1];
        out.add(m);
    }
    return out;
}

} // namespace

TEST(Equivalence, IdenticalCircuitsPass)
{
    Circuit c = sampleCircuit(4, 11);
    EquivalenceChecker chk;
    EquivalenceReport rep = chk.check(c, c);
    EXPECT_TRUE(rep.equivalent) << rep.detail;
    EXPECT_EQ(rep.mode, CheckMode::Full);
    EXPECT_LT(rep.worstDeviation, 1e-10);
}

TEST(Equivalence, GlobalPhaseIsIgnored)
{
    Circuit a(2);
    a.add(Op::rz(0, 0.7));
    a.add(Op::interact(0, 1, 0.0, 0.0, 0.4));

    // Same operation with an injected global phase e^{i 0.3}.
    linalg::Mat2 phased = linalg::rz(0.7) * linalg::Cx(
        std::cos(0.3), std::sin(0.3));
    Circuit b(2);
    b.add(Op::u1q(0, phased));
    b.add(Op::interact(0, 1, 0.0, 0.0, 0.4));

    EquivalenceChecker chk;
    EXPECT_TRUE(chk.check(a, b).equivalent);
}

TEST(Equivalence, DetectsAngleCorruption)
{
    Circuit c = sampleCircuit(4, 12);
    Circuit bad = c;
    bad.ops()[1].azz += 0.6;
    EquivalenceChecker chk;
    EquivalenceReport rep = chk.check(c, bad);
    EXPECT_FALSE(rep.equivalent);
    EXPECT_GT(rep.worstDeviation, 1e-3);
}

TEST(Equivalence, DetectsDroppedGate)
{
    Circuit c = sampleCircuit(4, 13);
    Circuit bad(4);
    for (int i = 1; i < c.size(); ++i)
        bad.add(c.op(i));
    EquivalenceChecker chk;
    EXPECT_FALSE(chk.check(c, bad).equivalent);
}

TEST(Equivalence, PermutationEmbeddingWithSwaps)
{
    Circuit logical = sampleCircuit(3, 14);
    // Device: 5 qubits; logical q -> device {4, 0, 2}; one final
    // SWAP moves logical 0 from device 4 to device 1.
    qap::Placement init = {4, 0, 2};
    Circuit device = embedded(logical, init, 5);
    device.add(Op::swap(4, 1));
    qap::Placement fin = {1, 0, 2};

    EquivalenceChecker chk;
    EXPECT_TRUE(chk.check(logical, device, init, fin).equivalent);

    // The same device circuit with the WRONG final map must fail.
    EXPECT_FALSE(chk.check(logical, device, init, init).equivalent);
}

TEST(Equivalence, DetectsJunkOnUnmappedQubit)
{
    Circuit logical = sampleCircuit(3, 15);
    qap::Placement map = {0, 1, 2};
    Circuit device = embedded(logical, map, 5);
    device.add(Op::rx(4, 0.9));  // unmapped qubit leaves |0>

    for (int maxFull : {20, 0}) {  // full and probe oracles
        EquivalenceOptions opt;
        opt.maxFullQubits = maxFull;
        EquivalenceChecker chk(opt);
        EXPECT_FALSE(
            chk.check(logical, device, map, map).equivalent)
            << "maxFullQubits=" << maxFull;
    }
}

TEST(Equivalence, ProbeModeAcceptsAndRejects)
{
    Circuit c = sampleCircuit(5, 16);
    EquivalenceOptions opt;
    opt.maxFullQubits = 0;  // force the probe oracle
    EquivalenceChecker chk(opt);

    EquivalenceReport rep = chk.check(c, c);
    EXPECT_TRUE(rep.equivalent) << rep.detail;
    EXPECT_EQ(rep.mode, CheckMode::Probe);

    Circuit bad = c;
    bad.ops()[0].axx += 0.7;
    EXPECT_FALSE(chk.check(c, bad).equivalent);
}

TEST(Equivalence, ProbeModeCatchesTrailingPhaseFault)
{
    // A trailing Rz corruption commutes with every Z-basis
    // observable; the random output frame is what makes it visible.
    Circuit c = sampleCircuit(4, 17);
    Circuit bad = c;
    bad.add(Op::rz(2, 0.8));

    EquivalenceOptions opt;
    opt.maxFullQubits = 0;
    EquivalenceChecker chk(opt);
    EXPECT_FALSE(chk.check(c, bad).equivalent);
}

TEST(Equivalence, DecompositionOutputsVerify)
{
    Circuit c = sampleCircuit(4, 18);
    EquivalenceChecker chk;
    EXPECT_TRUE(chk.check(c, decomp::decomposeToCnot(c)).equivalent);
    EXPECT_TRUE(chk.check(c, decomp::decomposeToCz(c)).equivalent);
}

TEST(Equivalence, EngineAttachmentDoesNotChangeResults)
{
    Circuit c = sampleCircuit(5, 19);
    Circuit bad = c;
    bad.ops()[2].theta += 0.5;

    EquivalenceChecker serial;
    sim::Engine eng(4);
    EquivalenceOptions opt;
    opt.engine = &eng;
    EquivalenceChecker parallel(opt);

    EquivalenceReport a = serial.check(c, c);
    EquivalenceReport b = parallel.check(c, c);
    EXPECT_TRUE(a.equivalent);
    EXPECT_TRUE(b.equivalent);
    EXPECT_DOUBLE_EQ(a.worstDeviation, b.worstDeviation);

    EXPECT_EQ(serial.check(c, bad).equivalent,
              parallel.check(c, bad).equivalent);
}

TEST(Equivalence, RejectsMalformedMaps)
{
    Circuit c = sampleCircuit(3, 20);
    EquivalenceChecker chk;
    qap::Placement good = {0, 1, 2};
    qap::Placement shortMap = {0, 1};
    qap::Placement collide = {0, 0, 1};
    EXPECT_THROW(chk.check(c, c, shortMap, good),
                 std::invalid_argument);
    EXPECT_THROW(chk.check(c, c, good, collide),
                 std::invalid_argument);
}
