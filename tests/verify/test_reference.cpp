/**
 * @file
 * Tests of the executed-order reference extraction (un-mapping),
 * the order-free operator-multiset check and the conservative
 * commutation test — plus the layout property test: for every
 * backend, CompileResult::finalLayout() must equal the map produced
 * by replaying the device circuit's own SWAP trace.
 */

#include <gtest/gtest.h>

#include "core/backend.h"
#include "device/devices.h"
#include "ham/models.h"
#include "ham/trotter.h"
#include "testgen/scenario.h"
#include "verify/reference.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;
using verify::unmapDeviceCircuit;

TEST(UnmapReference, TracksSwapsAndDressedSwaps)
{
    // Device: 4 qubits, logical 0 -> 2, 1 -> 0.
    Circuit dev(4);
    dev.add(Op::interact(2, 0, 0.1, 0.2, 0.3));
    dev.add(Op::swap(2, 3));             // logical 0 now at 3
    dev.add(Op::rx(3, 0.5));             // on logical 0
    dev.add(Op::dressedSwap(0, 3, 0.4, 0.0, 0.6));  // swap 1 <-> 0
    qap::Placement init = {2, 0};

    verify::UnmappedReference ref = unmapDeviceCircuit(dev, init, 2);
    ASSERT_TRUE(ref.ok) << ref.error;
    ASSERT_EQ(ref.logical.size(), 3);
    EXPECT_EQ(ref.logical.op(0).kind, qcir::OpKind::Interact);
    EXPECT_EQ(ref.logical.op(1).kind, qcir::OpKind::Rx);
    EXPECT_EQ(ref.logical.op(1).q0, 0);
    EXPECT_EQ(ref.logical.op(2).kind, qcir::OpKind::Interact);
    // After the dressed swap: logical 0 at device 0, logical 1 at 3.
    EXPECT_EQ(ref.finalMap, (qap::Placement{0, 3}));
}

TEST(UnmapReference, FailsOnHardwareOpsAndUnmappedQubits)
{
    Circuit hw(2);
    hw.add(Op::cnot(0, 1));
    verify::UnmappedReference r1 =
        unmapDeviceCircuit(hw, {0, 1}, 2);
    EXPECT_FALSE(r1.ok);

    Circuit stray(3);
    stray.add(Op::rx(2, 0.3));  // device qubit 2 holds no logical
    verify::UnmappedReference r2 =
        unmapDeviceCircuit(stray, {0, 1}, 2);
    EXPECT_FALSE(r2.ok);
}

TEST(OperatorMultiset, AcceptsReorderingsRejectsChanges)
{
    Circuit a(3);
    a.add(Op::interact(0, 1, 0.1, 0.2, 0.3));
    a.add(Op::interact(1, 2, 0.4, 0.5, 0.6));
    a.add(Op::rx(0, 0.7));

    Circuit b(3);  // reordered + swapped operands: still equal
    b.add(Op::rx(0, 0.7));
    b.add(Op::interact(2, 1, 0.4, 0.5, 0.6));
    b.add(Op::interact(0, 1, 0.1, 0.2, 0.3));
    EXPECT_TRUE(verify::sameOperatorMultiset(a, b));

    Circuit c = b;  // corrupt one coefficient
    c.ops()[1].ayy += 1e-3;
    std::string why;
    EXPECT_FALSE(verify::sameOperatorMultiset(a, c, 1e-9, &why));
    EXPECT_FALSE(why.empty());

    Circuit d(3);  // dropped term
    d.add(Op::interact(0, 1, 0.1, 0.2, 0.3));
    d.add(Op::rx(0, 0.7));
    EXPECT_FALSE(verify::sameOperatorMultiset(a, d));

    // A dressed SWAP counts as its Interact payload.
    Circuit e(3);
    e.add(Op::dressedSwap(0, 1, 0.1, 0.2, 0.3));
    e.add(Op::interact(1, 2, 0.4, 0.5, 0.6));
    e.add(Op::rx(0, 0.7));
    EXPECT_TRUE(verify::sameOperatorMultiset(a, e));
}

TEST(AllOpsCommute, ConservativeClassification)
{
    Circuit zz(3);  // pure-ZZ + Rz: all diagonal
    zz.add(Op::interact(0, 1, 0.0, 0.0, 0.3));
    zz.add(Op::interact(1, 2, 0.0, 0.0, 0.4));
    zz.add(Op::rz(1, 0.5));
    EXPECT_TRUE(verify::allOpsCommute(zz));

    Circuit disjoint(4);  // non-diagonal but disjoint supports
    disjoint.add(Op::interact(0, 1, 0.3, 0.2, 0.1));
    disjoint.add(Op::interact(2, 3, 0.5, 0.1, 0.2));
    EXPECT_TRUE(verify::allOpsCommute(disjoint));

    Circuit mixed = zz;  // an Rx on a shared qubit breaks it
    mixed.add(Op::rx(1, 0.2));
    EXPECT_FALSE(verify::allOpsCommute(mixed));
}

/**
 * Satellite property test: for every backend and a spread of random
 * scenarios, the advertised finalLayout() must equal the map
 * obtained by replaying the compiled circuit's own SWAP trace from
 * initialLayout() (exactly what un-mapping computes).
 */
TEST(LayoutProperty, FinalLayoutMatchesSwapTraceForAllBackends)
{
    for (std::uint64_t seed : {101, 202, 303, 404, 505}) {
        testgen::Scenario s = testgen::randomScenario(seed);
        for (const std::string &b : core::backendNames()) {
            if (core::backendByName(b).info().diagonalOnly &&
                !s.hamiltonian->isDiagonal())
                continue;
            core::CompileJob job;
            job.step = s.step.get();
            job.hamiltonian = s.hamiltonian.get();
            job.time = s.time;
            job.options.seed = seed;
            job.options.mapperTrials = 2;
            core::CompileResult res =
                core::backendByName(b).compile(job, s.topo);

            verify::UnmappedReference ref = unmapDeviceCircuit(
                res.sched.deviceCircuit, res.initialLayout(),
                s.step->numQubits());
            ASSERT_TRUE(ref.ok)
                << b << " on " << s.name << ": " << ref.error;
            EXPECT_EQ(ref.finalMap, res.finalLayout())
                << b << " on " << s.name;
        }
    }
}

/** For the 2QAN pipeline the routing result is also exposed:
 * applying its SwapSteps to maps.front() must land on finalLayout(),
 * and the map chain must agree step by step. */
TEST(LayoutProperty, RoutingSwapTraceMatchesMaps)
{
    testgen::Scenario s = testgen::randomScenario(42);
    core::CompileJob job;
    job.step = s.step.get();
    job.options.seed = 7;
    job.options.mapperTrials = 2;
    core::CompileResult res =
        core::backendByName("2qan").compile(job, s.topo);

    const core::RoutingResult &r = res.routing;
    ASSERT_FALSE(r.maps.empty());
    qap::Placement cur = r.maps.front();
    for (size_t i = 0; i < r.swaps.size(); ++i) {
        std::vector<int> inv =
            qap::invertPlacement(cur, s.topo.numQubits());
        std::swap(inv[r.swaps[i].p], inv[r.swaps[i].q]);
        for (int dq = 0; dq < s.topo.numQubits(); ++dq)
            if (inv[dq] >= 0)
                cur[inv[dq]] = dq;
        EXPECT_EQ(cur, r.maps[i + 1]) << "after swap " << i;
    }
    EXPECT_EQ(cur, res.finalLayout());
    EXPECT_EQ(r.maps.front(), res.initialLayout());
}
