/**
 * @file
 * The end-to-end acceptance gate of the correctness subsystem
 * (ctest label: verify):
 *
 *  - 500 seeded scenarios across every registered backend must
 *    verify with zero equivalence failures, and
 *  - the mutation campaign must detect >= 95% of injected
 *    single-gate corruptions
 *
 * plus the harness-level contracts: jobs-count invariance,
 * reproducer round-tripping, and shrinking producing smaller
 * still-failing instances.
 */

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/batch.h"
#include "core/sweep.h"
#include "ham/trotter.h"
#include "verify/fuzz.h"
#include "verify/mutate.h"
#include "verify/reference.h"

using namespace tqan;

TEST(FuzzAcceptance, FiveHundredScenariosZeroFailures)
{
    verify::FuzzOptions opt;
    opt.iterations = 500;
    opt.seed = 1;
    opt.jobs = 8;
    opt.mutationsPerCase = 2;

    verify::FuzzSummary sum = verify::runFuzz(opt);

    EXPECT_EQ(sum.scenarios, 500);
    // Every scenario compiles on several backends (ic_qaoa joins on
    // diagonal workloads only).
    EXPECT_GE(sum.cases, 4 * 500);
    for (const auto &f : sum.failures)
        ADD_FAILURE() << f.backend << " on " << f.scenarioName
                      << ": " << f.error << "\nreproducer:\n"
                      << f.reproducer;
    EXPECT_TRUE(sum.ok());

    EXPECT_GT(sum.mutationsTried, 1000);
    EXPECT_GE(sum.detectionRate(), 0.95)
        << "mutation campaign detected only "
        << sum.mutationsDetected << " of " << sum.mutationsTried;
}

TEST(FuzzAcceptance, SummaryIndependentOfJobs)
{
    verify::FuzzOptions opt;
    opt.iterations = 40;
    opt.seed = 77;
    opt.mutationsPerCase = 1;

    opt.jobs = 1;
    verify::FuzzSummary s1 = verify::runFuzz(opt);
    opt.jobs = 8;
    verify::FuzzSummary s8 = verify::runFuzz(opt);

    EXPECT_EQ(verify::summaryLine(s1), verify::summaryLine(s8));
    EXPECT_EQ(s1.cases, s8.cases);
    EXPECT_EQ(s1.mutationsTried, s8.mutationsTried);
    EXPECT_EQ(s1.mutationsDetected, s8.mutationsDetected);
}

TEST(FuzzAcceptance, ReproducerRoundTripsAndReplays)
{
    testgen::Scenario s = testgen::randomScenario(1234);
    std::string spec = testgen::toSpec(s);
    testgen::Scenario back = testgen::scenarioFromSpec(spec);

    EXPECT_EQ(back.seed, s.seed);
    EXPECT_DOUBLE_EQ(back.time, s.time);
    EXPECT_EQ(back.topo.numQubits(), s.topo.numQubits());
    EXPECT_EQ(back.topo.edges(), s.topo.edges());
    EXPECT_EQ(back.hamiltonian->pairs().size(),
              s.hamiltonian->pairs().size());
    EXPECT_EQ(back.step->size(), s.step->size());

    // A replayed clean scenario stays clean on every backend.
    verify::FuzzOptions opt;
    EXPECT_TRUE(verify::runScenario(back, opt).empty());
}

TEST(FuzzAcceptance, MutatedResultIsCaughtAndReported)
{
    // One hand-driven mutation round: compile, corrupt, expect the
    // harness-level detection path (the same code runFuzz uses) to
    // reject — pinned here so a silent oracle regression cannot
    // hide behind aggregate rates.
    testgen::Scenario s = testgen::randomScenario(555);
    verify::FuzzOptions opt;
    core::CompileJob job;
    job.step = s.step.get();
    job.hamiltonian = s.hamiltonian.get();
    job.time = s.time;
    job.options.seed = 9;
    job.options.mapperTrials = 2;
    core::CompileResult res =
        core::backendByName("2qan").compile(job, s.topo);

    verify::UnmappedReference ref = verify::unmapDeviceCircuit(
        res.sched.deviceCircuit, res.initialLayout(),
        s.step->numQubits());
    ASSERT_TRUE(ref.ok) << ref.error;

    std::mt19937_64 rng(3);
    verify::EquivalenceChecker checker;
    int tried = 0, caught = 0;
    for (int m = 0; m < 20; ++m) {
        verify::Mutation mut;
        if (!verify::mutateCircuit(res.sched.deviceCircuit, rng,
                                   &mut))
            break;
        ++tried;
        if (!checker
                 .check(ref.logical, mut.circuit,
                        res.initialLayout(), res.finalLayout())
                 .equivalent)
            ++caught;
    }
    ASSERT_GT(tried, 0);
    EXPECT_EQ(caught, tried);
}

TEST(FuzzAcceptance, ShrinkingProducesMinimalReproducers)
{
    // Force every case to "fail" (impossible tolerance) so the
    // shrinking pipeline runs for real: reproducers must come back
    // parseable and reduced to a single Hamiltonian term (any term
    // keeps an impossible check failing, so greedy removal bottoms
    // out at one).
    verify::FuzzOptions opt;
    opt.iterations = 3;
    opt.seed = 50;
    opt.backends = {"2qan"};
    opt.check.equivalence.tolerance = -1.0;
    opt.check.equivalence.trials = 1;
    opt.check.checkDecompositions = false;
    opt.shrink = true;
    opt.jobs = 3;

    verify::FuzzSummary sum = verify::runFuzz(opt);
    ASSERT_EQ(sum.failures.size(), 3u);
    for (const auto &f : sum.failures) {
        testgen::Scenario repro =
            testgen::scenarioFromSpec(f.reproducer);
        EXPECT_EQ(repro.hamiltonian->pairs().size() +
                      repro.hamiltonian->fields().size(),
                  1u)
            << f.reproducer;
        // And the shrunk case still fails under the same options.
        EXPECT_FALSE(verify::runScenario(repro, opt).empty());
    }
}

TEST(FuzzAcceptance, VerifySweepPresetRunsClean)
{
    // The sweep-integrated verification path: the canonical small
    // all-backend grid with spec.verify on must produce zero row
    // errors.
    core::SweepSpec spec = core::sweepPreset("verify");
    ASSERT_TRUE(spec.verify);
    core::BatchCompiler bc({4});
    for (const auto &row : core::runSweep(spec, bc))
        EXPECT_TRUE(row.ok())
            << row.benchmark << "/" << row.device << "/"
            << row.backend << " n=" << row.nqubits << ": "
            << row.error;
}
