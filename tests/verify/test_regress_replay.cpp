/**
 * @file
 * Replays every reproducer in tests/regress/ through the full
 * compile-and-verify stack (ctest label: verify).
 *
 * The corpus pins scenario shapes the fuzz campaign flagged as
 * interesting — today the adversarial generator classes plus the
 * parser-hardening findings in spec form.  When tqan-fuzz finds a
 * real miscompile, check its (shrunk) reproducer in here: the bug
 * stays fixed forever, and the file doubles as format-stability
 * coverage for scenarioFromSpec.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "verify/fuzz.h"

using namespace tqan;

namespace {
namespace fs = std::filesystem;

std::vector<fs::path>
corpusFiles()
{
    std::vector<fs::path> files;
    for (const auto &e : fs::directory_iterator(TQAN_REGRESS_DIR))
        if (e.path().extension() == ".repro")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

TEST(RegressReplay, CorpusExists)
{
    EXPECT_GE(corpusFiles().size(), 3u)
        << "tests/regress/ lost its reproducer corpus";
}

TEST(RegressReplay, EveryReproducerVerifiesCleanOnEveryBackend)
{
    verify::FuzzOptions opt;
    for (const fs::path &p : corpusFiles()) {
        std::ifstream f(p);
        ASSERT_TRUE(f) << p;
        testgen::Scenario s;
        ASSERT_NO_THROW(s = testgen::scenarioFromSpec(f)) << p;
        for (const auto &fail : verify::runScenario(s, opt))
            ADD_FAILURE() << p.filename() << " on " << fail.backend
                          << ": " << fail.error;
    }
}
