/**
 * @file
 * Pauli-propagation probe unit tests.  The headline test pins the
 * documented error bound of verify/pauli_probe.h:
 *
 *   | evaluate(psi) - <psi| U_dag O U |psi> |  <=  truncationError()
 *
 * as a property over random circuits, probes, frames and product
 * inputs with truncation forced on (tiny maxTerms).  The rest covers
 * exactness without truncation, single-term Clifford propagation,
 * budget aborts, and the prep-expectation helper.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "qcir/circuit.h"
#include "sim/statevector.h"
#include "verify/pauli_probe.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;
using verify::ConjugationPlan;
using verify::PauliProbeOptions;
using verify::PauliTerms;

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Generic random circuit (rotations + XX/YY/ZZ interactions at
 * arbitrary angles; almost surely non-Clifford). */
Circuit
randomCircuit(int n, int gates, std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> a(0.15, 1.3);
    std::uniform_int_distribution<int> kind(0, 3);
    std::uniform_int_distribution<int> qd(0, n - 1);
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        int q0 = qd(rng), q1 = qd(rng);
        while (n > 1 && q1 == q0)
            q1 = qd(rng);
        switch (kind(rng)) {
          case 0:
            c.add(Op::rx(q0, a(rng)));
            break;
          case 1:
            c.add(Op::rz(q0, a(rng)));
            break;
          case 2:
            c.add(Op::ry(q0, a(rng)));
            break;
          default:
            c.add(Op::interact(q0, q1, a(rng), a(rng), a(rng)));
            break;
        }
    }
    return c;
}

linalg::Mat2
randomPrep(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    std::uniform_real_distribution<double> u2pi(0.0, 2.0 * kPi);
    double theta = std::acos(1.0 - 2.0 * u01(rng));
    return linalg::rz(u2pi(rng)) * linalg::ry(theta) *
           linalg::rz(u2pi(rng));
}

/** Exact <psi| F_dag O F |psi> with psi = C (prep |0...0>), O = Z_u
 * (v < 0) or Z_u Z_v, and F the product frame. */
double
denseTruth(const Circuit &c, const std::vector<linalg::Mat2> &prep,
           const std::vector<std::pair<int, linalg::Mat2>> &frames,
           int u, int v)
{
    sim::Statevector psi(c.numQubits());
    for (int q = 0; q < c.numQubits(); ++q)
        psi.apply1q(q, prep[q]);
    psi.applyCircuit(c);
    for (const auto &f : frames)
        psi.apply1q(f.first, f.second);
    return v < 0 ? psi.expectationZ(u)
                 : psi.expectationZZ({{u, v}});
}

} // namespace

TEST(PauliProbe, ExactWithoutTruncation)
{
    // With maxTerms above the full n-qubit Pauli basis (4^n) the
    // only dropped mass is numerical dust, so the probe must agree
    // with the statevector to simulation precision.
    std::mt19937_64 rng(0xBACE0101ULL);
    PauliProbeOptions popt;
    popt.maxTerms = 1 << 13;
    popt.truncationBudget = 1e9;

    for (int rep = 0; rep < 25; ++rep) {
        int n = 2 + static_cast<int>(rng() % 5);  // 2..6
        Circuit c = randomCircuit(n, 3 * n, rng);
        ConjugationPlan plan(c);

        std::vector<linalg::Mat2> prep(n);
        std::vector<std::array<double, 4>> sigma(n);
        for (int q = 0; q < n; ++q) {
            prep[q] = randomPrep(rng);
            sigma[q] = verify::prepSigmaExpectations(prep[q]);
        }

        int u = static_cast<int>(rng() % n);
        int v = (rng() & 1) ? static_cast<int>(rng() % n) : -1;
        if (v == u)
            v = -1;

        PauliTerms o(n, popt);
        std::vector<std::pair<int, linalg::Mat2>> frames;
        if (v < 0) {
            o.setZ(u);
        } else {
            o.setZZ(u, v);
        }
        frames.push_back({u, randomPrep(rng)});
        o.conjugate1q(u, frames.back().second);
        if (v >= 0) {
            frames.push_back({v, randomPrep(rng)});
            o.conjugate1q(v, frames.back().second);
        }

        ASSERT_TRUE(o.backPropagate(plan)) << "rep " << rep;
        EXPECT_LT(o.truncationError(), 1e-6);
        EXPECT_NEAR(o.evaluate(sigma),
                    denseTruth(c, prep, frames, u, v), 1e-8)
            << "rep " << rep << " n=" << n;
    }
}

TEST(PauliProbe, TruncationErrorBoundsExpectationDefect)
{
    // The documented bound, as a property: with maxTerms forced tiny
    // the estimate may be far off, but NEVER by more than the
    // accumulated dropped L1 mass.
    std::mt19937_64 rng(0xBACE0202ULL);
    PauliProbeOptions popt;
    popt.maxTerms = 8;
    popt.truncationBudget = 1e9;  // never abort; measure the defect

    int heavyTruncations = 0;
    for (int rep = 0; rep < 40; ++rep) {
        int n = 3 + static_cast<int>(rng() % 4);  // 3..6
        Circuit c = randomCircuit(n, 4 * n, rng);
        ConjugationPlan plan(c);

        std::vector<linalg::Mat2> prep(n);
        std::vector<std::array<double, 4>> sigma(n);
        for (int q = 0; q < n; ++q) {
            prep[q] = randomPrep(rng);
            sigma[q] = verify::prepSigmaExpectations(prep[q]);
        }

        int u = static_cast<int>(rng() % n);
        PauliTerms o(n, popt);
        o.setZ(u);
        std::vector<std::pair<int, linalg::Mat2>> frames;
        frames.push_back({u, randomPrep(rng)});
        o.conjugate1q(u, frames.back().second);

        ASSERT_TRUE(o.backPropagate(plan));
        double defect = std::abs(o.evaluate(sigma) -
                                 denseTruth(c, prep, frames, u, -1));
        EXPECT_LE(defect, o.truncationError() + 1e-9)
            << "rep " << rep << " n=" << n
            << " truncErr=" << o.truncationError();
        if (o.truncationError() > 0.05)
            ++heavyTruncations;
    }
    // The property must not pass vacuously: truncation has to have
    // actually fired on a meaningful share of the reps.
    EXPECT_GE(heavyTruncations, 5);
}

TEST(PauliProbe, CliffordPropagationIsSingleTermAndExact)
{
    std::mt19937_64 rng(0xBACE0303ULL);
    for (int rep = 0; rep < 10; ++rep) {
        int n = 3 + static_cast<int>(rng() % 4);
        Circuit c(n);
        std::uniform_int_distribution<int> qd(0, n - 1);
        std::uniform_int_distribution<int> kd(0, 3);
        for (int i = 0; i < 3 * n; ++i) {
            int q0 = qd(rng), q1 = qd(rng);
            while (q1 == q0)
                q1 = qd(rng);
            switch (rng() % 4) {
              case 0:
                c.add(Op::rz(q0, kd(rng) * kPi / 2));
                break;
              case 1:
                c.add(Op::rx(q0, kd(rng) * kPi / 2));
                break;
              case 2:
                c.add(Op::cnot(q0, q1));
                break;
              default:
                c.add(Op::interact(q0, q1, kd(rng) * kPi / 4,
                                   kd(rng) * kPi / 4,
                                   kd(rng) * kPi / 4));
                break;
            }
        }
        ConjugationPlan plan(c);

        std::vector<linalg::Mat2> prep(n);
        std::vector<std::array<double, 4>> sigma(n);
        for (int q = 0; q < n; ++q) {
            prep[q] = randomPrep(rng);
            sigma[q] = verify::prepSigmaExpectations(prep[q]);
        }

        int u = static_cast<int>(rng() % n);
        PauliTerms o(n);
        o.setZ(u);
        ASSERT_TRUE(o.backPropagate(plan));
        // Clifford gates map one Pauli string to one Pauli string.
        EXPECT_EQ(o.termCount(), 1u);
        EXPECT_EQ(o.truncationError(), 0.0);
        EXPECT_NEAR(o.evaluate(sigma),
                    denseTruth(c, prep, {}, u, -1), 1e-9)
            << "rep " << rep;
    }
}

TEST(PauliProbe, BudgetExhaustionAbortsPropagation)
{
    // Dense generic layers scramble Z_q past any 4-term expansion;
    // with a real budget the propagation must abort (return false)
    // instead of grinding through the rest of the circuit.
    std::mt19937_64 rng(0xBACE0404ULL);
    std::uniform_real_distribution<double> a(0.3, 1.1);
    int n = 8;
    Circuit c(n);
    for (int layer = 0; layer < 3; ++layer)
        for (int q = 0; q + 1 < n; ++q)
            c.add(Op::interact(q, q + 1, a(rng), a(rng), a(rng)));
    ConjugationPlan plan(c);

    PauliProbeOptions popt;
    popt.maxTerms = 4;
    popt.truncationBudget = 0.05;
    PauliTerms o(n, popt);
    o.setZ(4);
    EXPECT_FALSE(o.backPropagate(plan));
    EXPECT_FALSE(o.withinBudget());
    EXPECT_GT(o.truncationError(), popt.truncationBudget);
}

TEST(PauliProbe, LightconeSkipsUntouchedQubitsExactly)
{
    // Gates outside the observable's support must not cost accuracy:
    // a probe on qubit 0 of a circuit whose non-Clifford bulk acts
    // on distant qubits stays exact even with tiny maxTerms.
    std::mt19937_64 rng(0xBACE0505ULL);
    std::uniform_real_distribution<double> a(0.3, 1.1);
    int n = 12;
    Circuit c(n);
    c.add(Op::rx(0, a(rng)));
    for (int layer = 0; layer < 4; ++layer)
        for (int q = 4; q + 1 < n; ++q)
            c.add(Op::interact(q, q + 1, a(rng), a(rng), a(rng)));
    ConjugationPlan plan(c);

    PauliProbeOptions popt;
    popt.maxTerms = 4;
    popt.truncationBudget = 0.05;
    PauliTerms o(n, popt);
    o.setZ(0);
    ASSERT_TRUE(o.backPropagate(plan));
    EXPECT_EQ(o.truncationError(), 0.0);

    std::vector<linalg::Mat2> prep(n);
    std::vector<std::array<double, 4>> sigma(n);
    for (int q = 0; q < n; ++q) {
        prep[q] = randomPrep(rng);
        sigma[q] = verify::prepSigmaExpectations(prep[q]);
    }
    EXPECT_NEAR(o.evaluate(sigma), denseTruth(c, prep, {}, 0, -1),
                1e-9);
}

TEST(PauliProbe, PrepSigmaExpectations)
{
    // |0>: <Z> = 1.
    auto s0 = verify::prepSigmaExpectations(linalg::Mat2::identity());
    EXPECT_DOUBLE_EQ(s0[0], 1.0);
    EXPECT_NEAR(s0[1], 0.0, 1e-12);
    EXPECT_NEAR(s0[2], 1.0, 1e-12);
    EXPECT_NEAR(s0[3], 0.0, 1e-12);

    // X|0> = |1>: <Z> = -1.
    auto s1 = verify::prepSigmaExpectations(linalg::pauliX());
    EXPECT_NEAR(s1[2], -1.0, 1e-12);

    // Ry(pi/2)|0> = |+>: <X> = 1, <Z> = 0.
    auto sp = verify::prepSigmaExpectations(linalg::ry(kPi / 2));
    EXPECT_NEAR(sp[1], 1.0, 1e-12);
    EXPECT_NEAR(sp[2], 0.0, 1e-12);

    // Random preps: cross-check every component against the dense
    // single-qubit simulation.
    std::mt19937_64 rng(0xBACE0606ULL);
    for (int rep = 0; rep < 10; ++rep) {
        linalg::Mat2 p = randomPrep(rng);
        auto s = verify::prepSigmaExpectations(p);
        sim::Statevector psi(1);
        psi.apply1q(0, p);
        const linalg::Mat2 paulis[3] = {linalg::pauliX(),
                                        linalg::pauliZ(),
                                        linalg::pauliY()};
        for (int k = 0; k < 3; ++k) {
            sim::Statevector phi = psi;
            phi.apply1q(0, paulis[k]);
            linalg::Cx acc(0.0, 0.0);
            for (std::uint64_t b = 0; b < psi.dim(); ++b)
                acc += std::conj(psi.amplitude(b)) *
                       phi.amplitude(b);
            EXPECT_NEAR(s[k + 1], acc.real(), 1e-12)
                << "rep " << rep << " component " << k;
        }
    }
}
