/**
 * @file
 * Oracle-mode selection and scale-limit tests:
 *
 *  - boundary behaviour at N == maxFullQubits / maxFullQubits + 1,
 *  - every configured ceiling clamped to the statevector hard limit
 *    (no oracle may ever attempt a 2^40-amplitude allocation),
 *  - stabilizer-mode selection, embedding and corruption detection
 *    far above any statevector ceiling,
 *  - the named oracle-unavailable outcome (never a crash, never a
 *    silent accept), surfaced through checkCompilation and the fuzz
 *    harness as skipped-with-reason, including reproducer replay,
 *  - the shared topology-size bound of the parametric device specs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/limits.h"
#include "device/devices.h"
#include "sim/stabilizer.h"
#include "verify/equivalence.h"
#include "verify/fuzz.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;
using verify::CheckMode;
using verify::EquivalenceChecker;
using verify::EquivalenceOptions;
using verify::EquivalenceReport;

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Shallow generic (non-Clifford) circuit: one rotation layer, a
 * CNOT ladder, one more rotation layer.  Back-evolved observables
 * stay low-weight, so the pauli-probe oracle decides it at any n. */
Circuit
shallowCircuit(int n)
{
    Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.add(Op::rz(q, 0.3 + 0.01 * q));
    for (int q = 0; q + 1 < n; q += 2)
        c.add(Op::cnot(q, q + 1));
    for (int q = 0; q < n; ++q)
        c.add(Op::rx(q, 0.4 + 0.005 * q));
    return c;
}

/** Random Clifford circuit (multiples of pi/2 rotations, CNOTs,
 * k*pi/4 interactions). */
Circuit
cliffordCircuit(int n, int gates, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> qd(0, n - 1);
    std::uniform_int_distribution<int> kd(0, 3);
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        int q0 = qd(rng), q1 = qd(rng);
        while (q1 == q0)
            q1 = qd(rng);
        switch (rng() % 4) {
          case 0:
            c.add(Op::rz(q0, kd(rng) * kPi / 2));
            break;
          case 1:
            c.add(Op::rx(q0, kd(rng) * kPi / 2));
            break;
          case 2:
            c.add(Op::cnot(q0, q1));
            break;
          default:
            c.add(Op::interact(q0, q1, kd(rng) * kPi / 4,
                               kd(rng) * kPi / 4,
                               kd(rng) * kPi / 4));
            break;
        }
    }
    return c;
}

/** Dense generic layers: scrambles any back-evolved observable past
 * every truncation ceiling. */
Circuit
scramblerCircuit(int n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> a(0.3, 1.1);
    Circuit c(n);
    for (int layer = 0; layer < 4; ++layer)
        for (int q = 0; q + 1 < n; ++q)
            c.add(Op::interact(q, q + 1, a(rng), a(rng), a(rng)));
    return c;
}

Circuit
embedded(const Circuit &c, const qap::Placement &map, int devQubits)
{
    Circuit out(devQubits);
    for (const auto &o : c.ops()) {
        Op m = o;
        m.q0 = map[o.q0];
        if (o.q1 >= 0)
            m.q1 = map[o.q1];
        out.add(m);
    }
    return out;
}

} // namespace

TEST(OracleModes, BoundaryAtMaxFullQubits)
{
    EquivalenceOptions opt;
    opt.maxFullQubits = 6;
    opt.maxStateQubits = 8;
    EquivalenceChecker chk(opt);

    // N == maxFullQubits: the full overlap oracle.
    EquivalenceReport atCeiling =
        chk.check(shallowCircuit(6), shallowCircuit(6));
    EXPECT_TRUE(atCeiling.equivalent) << atCeiling.detail;
    EXPECT_EQ(atCeiling.mode, CheckMode::Full);

    // N == maxFullQubits + 1: one past the ceiling, the scalar
    // probe oracle takes over (non-Clifford, N <= maxStateQubits).
    EquivalenceReport pastCeiling =
        chk.check(shallowCircuit(7), shallowCircuit(7));
    EXPECT_TRUE(pastCeiling.equivalent) << pastCeiling.detail;
    EXPECT_EQ(pastCeiling.mode, CheckMode::Probe);

    // N > maxStateQubits: no statevector at all.
    EquivalenceReport beyond =
        chk.check(shallowCircuit(9), shallowCircuit(9));
    EXPECT_TRUE(beyond.equivalent) << beyond.detail;
    EXPECT_EQ(beyond.mode, CheckMode::PauliProbe);
}

TEST(OracleModes, CeilingsClampToStatevectorHardLimit)
{
    // Asking for full statevector comparison at 1e6 qubits must not
    // be honoured above the hard limit: a 34-qubit check under these
    // options would need a 256 GiB statevector if the clamp
    // regressed.  It must select the pauli-probe oracle and decide.
    EquivalenceOptions opt;
    opt.maxFullQubits = 1000000;
    opt.maxStateQubits = 1000000;
    EquivalenceChecker chk(opt);

    Circuit c = shallowCircuit(34);
    EquivalenceReport rep = chk.check(c, c);
    EXPECT_EQ(rep.mode, CheckMode::PauliProbe);
    EXPECT_TRUE(rep.equivalent) << rep.detail;
    EXPECT_FALSE(rep.oracleUnavailable);

    // Small devices still get the full oracle under the same
    // options.
    EXPECT_EQ(chk.check(shallowCircuit(4), shallowCircuit(4)).mode,
              CheckMode::Full);
}

TEST(OracleModes, PauliProbeDetectsCorruptionBeyondStatevector)
{
    EquivalenceChecker chk;
    Circuit c = shallowCircuit(40);

    // Trailing phase corruption: only visible through the random
    // output frame (same failure class the scalar probe pins).
    Circuit trailing = c;
    trailing.add(Op::rz(5, 0.8));
    EquivalenceReport rep = chk.check(c, trailing);
    EXPECT_EQ(rep.mode, CheckMode::PauliProbe);
    EXPECT_FALSE(rep.equivalent);

    // Angle corruption in the final rotation layer (ops are 40 rz,
    // 20 cnot, then 40 rx; index 65 is the rx on qubit 5).
    Circuit bumped = c;
    bumped.ops()[65].theta += 0.6;
    EXPECT_FALSE(chk.check(c, bumped).equivalent);
}

TEST(OracleModes, StabilizerSelectedForCliffordAtScale)
{
    // 60 qubits: far beyond every statevector ceiling, yet both
    // circuits are Clifford, so the tableau oracle verifies EXACTLY.
    Circuit c = cliffordCircuit(60, 180, 0xC11F0001ULL);
    ASSERT_TRUE(sim::isCliffordCircuit(c));

    EquivalenceChecker chk;
    EquivalenceReport rep = chk.check(c, c);
    EXPECT_EQ(rep.mode, CheckMode::Stabilizer);
    EXPECT_TRUE(rep.equivalent) << rep.detail;
    EXPECT_EQ(rep.worstDeviation, 0.0);

    // A single appended X (still Clifford, so still the stabilizer
    // oracle) must be rejected -- exact arithmetic, no tolerance.
    Circuit bad = c;
    bad.add(Op::rx(0, kPi));
    EquivalenceReport badRep = chk.check(c, bad);
    EXPECT_EQ(badRep.mode, CheckMode::Stabilizer);
    EXPECT_FALSE(badRep.equivalent);
}

TEST(OracleModes, StabilizerHandlesEmbeddingAndWitnesses)
{
    // Logical 40-qubit Clifford circuit embedded at device qubits
    // 4..43 of a 44-qubit register, one final SWAP moving logical 0
    // to device 0; unmapped qubits are witnessed to stay |0>.
    int n = 40, N = 44;
    Circuit logical = cliffordCircuit(n, 120, 0xC11F0002ULL);
    qap::Placement init(n);
    for (int q = 0; q < n; ++q)
        init[q] = q + 4;
    Circuit device = embedded(logical, init, N);
    device.add(Op::swap(4, 0));
    qap::Placement fin = init;
    fin[0] = 0;

    EquivalenceChecker chk;
    EquivalenceReport rep = chk.check(logical, device, init, fin);
    EXPECT_EQ(rep.mode, CheckMode::Stabilizer);
    EXPECT_TRUE(rep.equivalent) << rep.detail;

    // Wrong final map: rejected.
    EXPECT_FALSE(chk.check(logical, device, init, init).equivalent);

    // Junk on an unmapped device qubit: rejected by the Z witness.
    Circuit junk = device;
    junk.add(Op::rx(2, kPi));
    EXPECT_FALSE(chk.check(logical, junk, init, fin).equivalent);
}

TEST(OracleModes, OracleUnavailableIsNamedNotACrash)
{
    // A scrambling circuit at 32 qubits with identity maps: no
    // witnesses exist and every back-evolved probe blows through the
    // (deliberately tiny) truncation ceiling.  The checker must
    // return the named oracle-unavailable outcome -- not throw, not
    // allocate a statevector, not silently accept.
    Circuit c = scramblerCircuit(32, 0x5C4A3BULL);
    EquivalenceOptions opt;
    opt.pauliProbeMaxTerms = 8;
    opt.pauliProbeBudget = 0.01;
    EquivalenceChecker chk(opt);

    EquivalenceReport rep = chk.check(c, c);
    EXPECT_EQ(rep.mode, CheckMode::PauliProbe);
    EXPECT_TRUE(rep.oracleUnavailable);
    EXPECT_FALSE(rep.equivalent);
    EXPECT_NE(rep.detail.find("unavailable"), std::string::npos)
        << rep.detail;
    EXPECT_NE(rep.detail.find("pauli-probe"), std::string::npos)
        << rep.detail;
}

TEST(OracleModes, FuzzSurfacesUnavailableAsSkippedWithReason)
{
    // Over-ceiling scenarios whose probes cannot survive a 1-term
    // truncation ceiling: the fuzz loop must complete with zero
    // failures and report every case as skipped-with-reason naming
    // the refusing oracle (the bugfix contract: previously this
    // class of input died on an escaping length error).
    verify::FuzzOptions opt;
    opt.iterations = 4;
    opt.seed = 11;
    opt.backends = {"2qan"};
    opt.mapperTrials = 1;
    opt.check.checkDecompositions = false;
    opt.check.equivalence.pauliProbeMaxTerms = 1;
    opt.check.equivalence.pauliProbeBudget = 1e-9;
    // n == device qubits == 28 > maxStateQubits: pauli-probe mode
    // with no unmapped-qubit witnesses to fall back on.
    opt.scenario.minQubits = 28;
    opt.scenario.maxQubits = 28;
    opt.scenario.maxDeviceQubits = 28;

    verify::FuzzSummary sum = verify::runFuzz(opt);
    EXPECT_TRUE(sum.failures.empty());
    EXPECT_GT(sum.cases, 0);
    EXPECT_EQ(sum.skippedCases, sum.cases);
    ASSERT_FALSE(sum.skips.empty());
    for (const auto &k : sum.skips) {
        EXPECT_NE(k.reason.find("pauli-probe"), std::string::npos)
            << k.reason;
        EXPECT_NE(k.reason.find("unavailable"), std::string::npos)
            << k.reason;
    }
    EXPECT_NE(verify::summaryLine(sum).find("skipped"),
              std::string::npos);

    // Reproducer replay of an over-ceiling spec reports WHICH oracle
    // refused and why (the runScenario path tqan-fuzz --replay
    // prints), instead of claiming a clean verify or crashing.
    testgen::Scenario s = testgen::randomScenario(
        sum.skips.front().scenarioSeed, opt.scenario);
    testgen::Scenario back =
        testgen::scenarioFromSpec(testgen::toSpec(s));
    std::vector<verify::FuzzSkip> skips;
    EXPECT_TRUE(verify::runScenario(back, opt, &skips).empty());
    ASSERT_FALSE(skips.empty());
    EXPECT_EQ(skips.front().backend, "2qan");
    EXPECT_NE(skips.front().reason.find("pauli-probe"),
              std::string::npos)
        << skips.front().reason;
}

TEST(OracleModes, ParametricDeviceSpecsShareTheTopologyBound)
{
    // One named limit (core/limits.h) gates every parametric spec
    // family; previously each parser had its own (divergent) cap.
    EXPECT_NO_THROW(device::deviceByName("grid:3x4"));
    EXPECT_NO_THROW(device::deviceByName("heavyhex:3"));

    EXPECT_THROW(device::deviceByName("grid:200x200"),
                 std::invalid_argument);
    EXPECT_THROW(device::deviceByName("heavyhex:999"),
                 std::invalid_argument);
    EXPECT_THROW(
        device::deviceByName(
            "line:" +
            std::to_string(core::kMaxTopologyQubits + 1)),
        std::invalid_argument);

    // heavy-hex parameters must be odd and >= 3 (the IBM families).
    EXPECT_THROW(device::deviceByName("heavyhex:4"),
                 std::invalid_argument);
    EXPECT_EQ(device::deviceByName("heavyhex:5").numQubits(), 65);
}
