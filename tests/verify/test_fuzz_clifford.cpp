/**
 * @file
 * The beyond-statevector acceptance gate (ctest label: oracle):
 * Clifford-restricted fuzzing at >= 100 qubits must verify EXACTLY
 * (stabilizer oracle, zero failures, zero skips) over >= 500 seeded
 * scenarios across every registered backend, and the mutation
 * campaign on that leg must detect >= 95% of injected single-gate
 * corruptions (non-Clifford mutants exercise the pauli-probe
 * oracle).  Plus the jobs-count determinism contract for the new
 * scenario options.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/backend.h"
#include "verify/fuzz.h"

using namespace tqan;

TEST(FuzzClifford, FiveHundredScenariosAtHundredQubitsExact)
{
    verify::FuzzOptions opt;
    opt.iterations = 500;
    opt.seed = 2;
    opt.jobs = 8;
    opt.mapperTrials = 1;
    opt.check.checkDecompositions = false;
    opt.scenario.cliffordOnly = true;
    opt.scenario.minQubits = 100;
    opt.scenario.maxQubits = 112;
    opt.scenario.maxDeviceQubits = 128;
    opt.scenario.structuredFraction = 0.5;  // grid / heavy-hex legs

    // The gate covers every registered backend, including the
    // ripup-and-reroute pipeline.
    std::vector<std::string> names = core::backendNames();
    ASSERT_NE(std::find(names.begin(), names.end(), "2qan_rrr"),
              names.end());

    verify::FuzzSummary sum = verify::runFuzz(opt);

    EXPECT_EQ(sum.scenarios, 500);
    // Five backends take every workload; ic_qaoa joins on the
    // diagonal (clifford_qaoa) half.
    EXPECT_GE(sum.cases, 5 * 500);
    for (const auto &f : sum.failures)
        ADD_FAILURE() << f.backend << " on " << f.scenarioName
                      << ": " << f.error << "\nreproducer:\n"
                      << f.reproducer;
    EXPECT_TRUE(sum.ok());
    // The stabilizer oracle is exact at any width: no case may come
    // back oracle-unavailable on the Clifford leg.
    EXPECT_EQ(sum.skippedCases, 0);
}

TEST(FuzzClifford, MutationDetectionAtScale)
{
    verify::FuzzOptions opt;
    opt.iterations = 60;
    opt.seed = 3;
    opt.jobs = 8;
    opt.mapperTrials = 1;
    opt.mutationsPerCase = 1;
    opt.check.checkDecompositions = false;
    // Non-Clifford mutants of 100-qubit circuits land in the
    // pauli-probe oracle, whose per-probe lightcone is local; a
    // wider probe plan keeps coverage of the whole register.
    opt.check.equivalence.probesPerTrial = 48;
    opt.scenario.cliffordOnly = true;
    opt.scenario.minQubits = 100;
    opt.scenario.maxQubits = 104;
    opt.scenario.maxDeviceQubits = 112;
    opt.scenario.structuredFraction = 0.5;

    verify::FuzzSummary sum = verify::runFuzz(opt);

    EXPECT_TRUE(sum.ok());
    EXPECT_EQ(sum.skippedCases, 0);
    EXPECT_GT(sum.mutationsTried, 100);
    EXPECT_GE(sum.detectionRate(), 0.95)
        << "detected only " << sum.mutationsDetected << " of "
        << sum.mutationsTried << " injected corruptions";
}

TEST(FuzzClifford, SummaryIndependentOfJobsWithNewOptions)
{
    // The determinism contract must hold with every new scenario
    // option switched on (Clifford kinds, structured topologies,
    // noise maps all draw from the same seeded streams).
    verify::FuzzOptions opt;
    opt.iterations = 16;
    opt.seed = 91;
    opt.mapperTrials = 1;
    opt.check.checkDecompositions = false;
    opt.scenario.cliffordOnly = true;
    opt.scenario.minQubits = 60;
    opt.scenario.maxQubits = 70;
    opt.scenario.maxDeviceQubits = 80;
    opt.scenario.structuredFraction = 0.5;
    opt.scenario.withNoise = true;

    opt.jobs = 1;
    verify::FuzzSummary s1 = verify::runFuzz(opt);
    opt.jobs = 5;
    verify::FuzzSummary s5 = verify::runFuzz(opt);

    EXPECT_TRUE(s1.ok());
    EXPECT_EQ(verify::summaryLine(s1), verify::summaryLine(s5));
    EXPECT_EQ(s1.cases, s5.cases);
    EXPECT_EQ(s1.skippedCases, s5.skippedCases);
}
