/**
 * @file
 * Unit tests for the device topologies.
 */

#include <gtest/gtest.h>

#include "device/devices.h"

using namespace tqan::device;

TEST(Topology, GridDistances)
{
    Topology t = grid(3, 4);
    EXPECT_EQ(t.numQubits(), 12);
    EXPECT_EQ(t.dist(0, 0), 0);
    EXPECT_EQ(t.dist(0, 3), 3);   // along the first row
    EXPECT_EQ(t.dist(0, 11), 5);  // manhattan distance
    EXPECT_TRUE(t.connected(0, 1));
    EXPECT_FALSE(t.connected(0, 2));
}

TEST(Topology, LineAndRing)
{
    Topology l = line(5);
    EXPECT_EQ(l.dist(0, 4), 4);
    Topology r = ring(6);
    EXPECT_EQ(r.dist(0, 3), 3);
    EXPECT_EQ(r.dist(0, 5), 1);
}

TEST(Topology, AllToAll)
{
    Topology t = allToAll(6);
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 6; ++j)
            EXPECT_EQ(t.dist(i, j), i == j ? 0 : 1);
}

TEST(Topology, CubeEdgeCount)
{
    // 5x3x2: 4*3*2 + 5*2*2 + 5*3*1 = 24 + 20 + 15 = 59 edges; this is
    // the Heisenberg-3D lattice of Table III (30 qubits).
    Topology t = cube(5, 3, 2);
    EXPECT_EQ(t.numQubits(), 30);
    EXPECT_EQ(static_cast<int>(t.edges().size()), 59);
}

TEST(Topology, RejectsDisconnected)
{
    tqan::graph::Graph g(4, {{0, 1}, {2, 3}});
    EXPECT_THROW(Topology("bad", g), std::invalid_argument);
}

TEST(Devices, Sycamore54)
{
    Topology t = sycamore54();
    EXPECT_EQ(t.numQubits(), 54);
    // Square-lattice bulk degree 4.
    int deg4 = 0;
    for (int q = 0; q < 54; ++q)
        if (static_cast<int>(t.neighbors(q).size()) == 4)
            ++deg4;
    EXPECT_GT(deg4, 20);
}

TEST(Devices, Montreal27)
{
    Topology t = montreal27();
    EXPECT_EQ(t.numQubits(), 27);
    EXPECT_EQ(static_cast<int>(t.edges().size()), 28);
    // Heavy-hex: maximum degree 3.
    for (int q = 0; q < 27; ++q)
        EXPECT_LE(static_cast<int>(t.neighbors(q).size()), 3);
}

TEST(Devices, Aspen16)
{
    Topology t = aspen16();
    EXPECT_EQ(t.numQubits(), 16);
    // Two octagons (16 ring edges) + 2 bridges.
    EXPECT_EQ(static_cast<int>(t.edges().size()), 18);
    for (int q = 0; q < 16; ++q)
        EXPECT_LE(static_cast<int>(t.neighbors(q).size()), 3);
}

TEST(Devices, HeavyHex5IsManhattan)
{
    Topology t = manhattan65();
    EXPECT_EQ(t.numQubits(), 65);
    // Heavy-hex degree bound.
    for (int q = 0; q < 65; ++q)
        EXPECT_LE(static_cast<int>(t.neighbors(q).size()), 3);
    EXPECT_EQ(static_cast<int>(t.edges().size()), 72);
}

TEST(Devices, HeavyHexRejectsEven)
{
    EXPECT_THROW(heavyHex(4), std::invalid_argument);
    EXPECT_THROW(heavyHex(1), std::invalid_argument);
}

TEST(Devices, GateSetNames)
{
    EXPECT_EQ(gateSetName(GateSet::Cnot), "CNOT");
    EXPECT_EQ(gateSetName(GateSet::Syc), "SYC");
    EXPECT_EQ(gateSetName(GateSet::ISwap), "iSWAP");
    EXPECT_EQ(gateSetName(GateSet::Cz), "CZ");
}
