/**
 * @file
 * Tests for calibration noise maps and noise-aware placement (the
 * paper's Sec. VII future-work extension).
 */

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "device/devices.h"
#include "device/noise_map.h"
#include "ham/models.h"
#include "ham/trotter.h"
#include "qap/tabu.h"

using namespace tqan;
using device::NoiseMap;

TEST(NoiseMap, ConstructionValidates)
{
    device::Topology topo = device::line(3);
    EXPECT_THROW(NoiseMap(topo, {0.01}, {0.01, 0.01, 0.01}),
                 std::invalid_argument);  // wrong edge count
    EXPECT_THROW(NoiseMap(topo, {0.01, 0.01}, {0.01}),
                 std::invalid_argument);  // wrong qubit count
    EXPECT_THROW(NoiseMap(topo, {0.01, 1.5}, {0.01, 0.01, 0.01}),
                 std::invalid_argument);  // bad rate
    NoiseMap nm(topo, {0.01, 0.02}, {0.01, 0.01, 0.01});
    EXPECT_DOUBLE_EQ(nm.edgeError(0, 1), 0.01);
    EXPECT_DOUBLE_EQ(nm.edgeError(2, 1), 0.02);
    EXPECT_THROW(nm.edgeError(0, 2), std::invalid_argument);
}

TEST(NoiseMap, SyntheticCalibrationShape)
{
    device::Topology topo = device::montreal27();
    std::mt19937_64 rng(141);
    NoiseMap nm = NoiseMap::synthetic(topo, rng);
    double sum = 0.0, mx = 0.0, mn = 1.0;
    for (double e : nm.edgeErrors()) {
        sum += e;
        mx = std::max(mx, e);
        mn = std::min(mn, e);
    }
    double mean = sum / nm.edgeErrors().size();
    EXPECT_NEAR(mean, 0.0124, 0.01);
    EXPECT_GT(mx / mn, 1.5);  // genuine inhomogeneity
}

TEST(NoiseMap, DistancesReduceToHopsAtLambdaZero)
{
    device::Topology topo = device::grid(3, 3);
    std::mt19937_64 rng(142);
    NoiseMap nm = NoiseMap::synthetic(topo, rng);
    auto d = nm.noiseAwareDistances(0.0);
    for (int p = 0; p < 9; ++p)
        for (int q = 0; q < 9; ++q)
            EXPECT_NEAR(d[p][q], topo.dist(p, q), 1e-9);
}

TEST(NoiseMap, BadCouplerGetsAvoided)
{
    // Line of 4 with a terrible middle coupler: the noise-aware
    // distance through it must exceed the hop count substantially.
    device::Topology topo = device::line(4);
    NoiseMap nm(topo, {0.005, 0.25, 0.005},
                {0.01, 0.01, 0.01, 0.01});
    auto d = nm.noiseAwareDistances(2.0);
    EXPECT_GT(d[1][2], 2.5);          // inflated single hop
    EXPECT_LT(d[0][1], 1.5);          // good coupler ~ 1
}

TEST(NoiseAwarePlacement, PrefersCleanRegion)
{
    // 2x4 grid; the right half has 10x worse couplers.  A 3-qubit
    // chain should be placed in the left half.
    device::Topology topo = device::grid(2, 4);
    std::vector<double> errs;
    for (const auto &[u, v] : topo.edges()) {
        bool right = (u % 4) >= 2 || (v % 4) >= 2;
        errs.push_back(right ? 0.10 : 0.004);
    }
    NoiseMap nm(topo, errs, std::vector<double>(8, 0.01));

    ham::TwoLocalHamiltonian h(3);
    h.addPair(0, 1, 0, 0, 0.5);
    h.addPair(1, 2, 0, 0, 0.5);
    auto flow = qap::flowMatrix(h);
    auto dist = nm.noiseAwareDistances(3.0);

    std::mt19937_64 rng(143);
    auto p = qap::tabuSearchQapMatrix(flow, dist, rng);
    // All three qubits on the clean columns 0-1.
    for (int loc : p)
        EXPECT_LT(loc % 4, 2) << "placed on noisy column";
}

TEST(NoiseAwarePlacement, CompilerIntegration)
{
    std::mt19937_64 rng(144);
    device::Topology topo = device::montreal27();
    auto h = ham::nnnIsing(10, rng);
    auto step = ham::trotterStep(h, 1.0);

    core::CompilerOptions opt;
    opt.seed = 145;
    std::mt19937_64 nrng(9);
    opt.noiseMap = std::make_shared<NoiseMap>(
        NoiseMap::synthetic(topo, nrng));
    opt.noiseLambda = 1.5;
    core::TqanCompiler comp(topo, opt);
    auto res = comp.compile(step);
    EXPECT_TRUE(core::scheduleIsValid(
        qcir::unifySamePairInteractions(step), topo, res.sched));
}
