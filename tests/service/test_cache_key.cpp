/**
 * @file
 * Cache-key completeness: the content address of a compile request
 * must cover EVERY input that can change the result.  Two guards:
 *
 *  1. Mutation: flip each CompileRequest / CompilerOptions field one
 *     at a time and assert the key changes.  A field the canonical
 *     form forgot would alias two different compilations onto one
 *     cache entry — the worst possible cache bug, wrong results
 *     served silently.
 *
 *  2. Layout tripwire: mirror structs with the exact field lists
 *     canonicalRequest() was written for, pinned by sizeof
 *     static_asserts.  Adding a CompilerOptions field without
 *     extending the canonical form (and this test) fails the build
 *     here instead of shipping an incomplete key.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "core/compiler.h"
#include "device/noise_map.h"
#include "service/service.h"
#include "testgen/random_topology.h"

using namespace tqan;
using service::CompileRequest;
using service::CompileService;

namespace {

/** Field-for-field images of the structs the canonical form covers.
 * If a field is added/removed/resized upstream, the sizeof asserts
 * below fire and point here. */
struct TabuOptionsMirror
{
    int maxIters;
    int tabuLowMul;
    int tabuHighMul;
    int stallLimit;
};
struct RouterOptionsMirror
{
    std::string name;
    bool unifySwaps;
    int maxSwapFactor;
    int rrrMaxRounds;
    double rrrHistoryWeight;
    double rrrPresentWeight;
};
struct CompilerOptionsMirror
{
    core::MapperKind mapper;
    int mapperTrials;
    int jobs;
    bool unifyCircuit;
    bool hybridSchedule;
    RouterOptionsMirror router;
    TabuOptionsMirror tabu;
    std::shared_ptr<const device::NoiseMap> noiseMap;
    double noiseLambda;
    /** Excluded from the key by design: derived plumbing the batch
     * layer injects after keying (must be null in a request). */
    std::shared_ptr<const linalg::FlatMatrix> sharedDistances;
    std::uint64_t seed;
};
static_assert(sizeof(TabuOptionsMirror) == sizeof(qap::TabuOptions),
              "qap::TabuOptions changed: extend "
              "CompileService::canonicalRequest() and this test");
static_assert(sizeof(RouterOptionsMirror) ==
                  sizeof(core::RouterOptions),
              "core::RouterOptions changed: extend "
              "CompileService::canonicalRequest() and this test");
static_assert(sizeof(CompilerOptionsMirror) ==
                  sizeof(core::CompilerOptions),
              "core::CompilerOptions changed: extend "
              "CompileService::canonicalRequest() and this test");

CompileRequest
baseRequest()
{
    CompileRequest r;
    r.ham = "qubits 3\npair 0 1 0 0 0.7\npair 1 2 0 0 0.7\n";
    r.device = "line:4";
    return r;
}

std::uint64_t
keyOf(const CompileRequest &r)
{
    device::Topology topo = testgen::topologyFromSpec(r.device);
    return CompileService::cacheKey(r, topo);
}

void
expectKeyChanges(const char *field, const CompileRequest &mutated)
{
    EXPECT_NE(keyOf(baseRequest()), keyOf(mutated))
        << "mutating " << field << " did not change the cache key";
}

} // namespace

TEST(CacheKey, IsDeterministic)
{
    EXPECT_EQ(keyOf(baseRequest()), keyOf(baseRequest()));
}

TEST(CacheKey, CoversEveryRequestField)
{
    CompileRequest r;

    r = baseRequest();
    r.ham = "qubits 3\npair 0 1 0 0 0.8\npair 1 2 0 0 0.7\n";
    expectKeyChanges("ham", r);

    r = baseRequest();
    r.device = "line:5";
    expectKeyChanges("device", r);

    r = baseRequest();
    r.gateset = "cz";
    expectKeyChanges("gateset", r);

    r = baseRequest();
    r.backend = "tket_like";
    expectKeyChanges("backend", r);

    r = baseRequest();
    r.time = 2.0;
    expectKeyChanges("time", r);
}

TEST(CacheKey, CoversEveryCompilerOptionsField)
{
    CompileRequest r;

    r = baseRequest();
    r.options.mapper = core::MapperKind::Anneal;
    expectKeyChanges("options.mapper", r);

    r = baseRequest();
    r.options.mapperTrials += 1;
    expectKeyChanges("options.mapperTrials", r);

    r = baseRequest();
    r.options.jobs += 1;
    expectKeyChanges("options.jobs", r);

    r = baseRequest();
    r.options.unifyCircuit = !r.options.unifyCircuit;
    expectKeyChanges("options.unifyCircuit", r);

    r = baseRequest();
    r.options.hybridSchedule = !r.options.hybridSchedule;
    expectKeyChanges("options.hybridSchedule", r);

    r = baseRequest();
    r.options.router.name = "rrr";
    expectKeyChanges("options.router.name", r);

    r = baseRequest();
    r.options.router.unifySwaps = !r.options.router.unifySwaps;
    expectKeyChanges("options.router.unifySwaps", r);

    r = baseRequest();
    r.options.router.maxSwapFactor += 1;
    expectKeyChanges("options.router.maxSwapFactor", r);

    r = baseRequest();
    r.options.router.rrrMaxRounds += 1;
    expectKeyChanges("options.router.rrrMaxRounds", r);

    r = baseRequest();
    r.options.router.rrrHistoryWeight += 0.25;
    expectKeyChanges("options.router.rrrHistoryWeight", r);

    r = baseRequest();
    r.options.router.rrrPresentWeight += 0.25;
    expectKeyChanges("options.router.rrrPresentWeight", r);

    r = baseRequest();
    r.options.tabu.maxIters += 1;
    expectKeyChanges("options.tabu.maxIters", r);

    r = baseRequest();
    r.options.tabu.tabuLowMul += 1;
    expectKeyChanges("options.tabu.tabuLowMul", r);

    r = baseRequest();
    r.options.tabu.tabuHighMul += 1;
    expectKeyChanges("options.tabu.tabuHighMul", r);

    r = baseRequest();
    r.options.tabu.stallLimit += 1;
    expectKeyChanges("options.tabu.stallLimit", r);

    r = baseRequest();
    {
        device::Topology topo =
            testgen::topologyFromSpec(r.device);
        std::mt19937_64 rng(1);
        r.options.noiseMap = std::make_shared<device::NoiseMap>(
            device::NoiseMap::synthetic(topo, rng));
    }
    expectKeyChanges("options.noiseMap", r);

    r = baseRequest();
    r.options.noiseLambda = 0.5;
    expectKeyChanges("options.noiseLambda", r);

    r = baseRequest();
    r.options.seed += 1;
    expectKeyChanges("options.seed", r);
}

TEST(CacheKey, DifferentNoiseMapsGetDifferentKeys)
{
    // The map's CONTENTS are keyed, not just its presence.
    auto withNoise = [](std::uint64_t rngSeed) {
        CompileRequest r = baseRequest();
        device::Topology topo =
            testgen::topologyFromSpec(r.device);
        std::mt19937_64 rng(rngSeed);
        r.options.noiseMap = std::make_shared<device::NoiseMap>(
            device::NoiseMap::synthetic(topo, rng));
        return keyOf(r);
    };
    EXPECT_NE(withNoise(1), withNoise(2));
    EXPECT_EQ(withNoise(3), withNoise(3));
}

TEST(CacheKey, RejectsRequestsCarryingSharedDistances)
{
    // sharedDistances is the one deliberate exclusion: derived,
    // injected by the batch layer after keying.  A request arriving
    // with it set would be a layering bug — refuse to key it.
    CompileRequest r = baseRequest();
    device::Topology topo = testgen::topologyFromSpec(r.device);
    r.options.sharedDistances =
        std::make_shared<linalg::FlatMatrix>(1, 1);
    EXPECT_THROW(CompileService::cacheKey(r, topo),
                 std::invalid_argument);
}

TEST(CacheKey, TimeUsesExactBitsNotFormatting)
{
    CompileRequest a = baseRequest();
    CompileRequest b = baseRequest();
    a.time = 1.0;
    b.time = 1.0 + 1e-15;  // would round away in %g formatting
    EXPECT_NE(keyOf(a), keyOf(b));
}
