/**
 * @file
 * Tests of the content-addressed compile cache's on-disk store:
 * round trip, restart persistence, and — the part that matters — the
 * verified load.  A truncated tail, a flipped byte, or a foreign
 * header must never be served back; the store is untrusted input.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "core/hash.h"
#include "robust/fault.h"
#include "service/cache.h"

using namespace tqan;
using service::CompileCache;

namespace {

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "tqan_cache_" + name + ".bin";
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Insert a canonical (request, payload) pair keyed by content. */
void
put(CompileCache &c, const std::string &req, const std::string &pay)
{
    c.insert(core::fnv1a64(req), req, pay);
}

bool
get(CompileCache &c, const std::string &req, std::string *pay)
{
    return c.lookup(core::fnv1a64(req), req, pay);
}

} // namespace

TEST(CompileCache, InMemoryRoundTrip)
{
    CompileCache c;
    std::string pay;
    EXPECT_FALSE(get(c, "req-a", &pay));
    put(c, "req-a", "payload-a");
    ASSERT_TRUE(get(c, "req-a", &pay));
    EXPECT_EQ(pay, "payload-a");
    EXPECT_EQ(c.size(), 1u);
}

TEST(CompileCache, LookupComparesRequestBytesNotJustTheKey)
{
    CompileCache c;
    std::string req = "req-b";
    c.insert(core::fnv1a64(req), req, "payload-b");
    // Same key, different request bytes: a (synthetic) collision
    // must miss, not serve the other request's payload.
    std::string pay;
    EXPECT_FALSE(c.lookup(core::fnv1a64(req), "req-OTHER", &pay));
}

TEST(CompileCache, PersistsAcrossReopen)
{
    std::string path = tempPath("persist");
    std::remove(path.c_str());
    {
        CompileCache c(path);
        put(c, "req-1", "pay-1");
        put(c, "req-2", "pay-2");
    }
    CompileCache again(path);
    EXPECT_EQ(again.size(), 2u);
    EXPECT_EQ(again.loadInfo().loadedEntries, 2u);
    EXPECT_EQ(again.loadInfo().droppedBytes, 0u);
    EXPECT_FALSE(again.loadInfo().rebuilt);
    std::string pay;
    ASSERT_TRUE(get(again, "req-2", &pay));
    EXPECT_EQ(pay, "pay-2");
    std::remove(path.c_str());
}

TEST(CompileCache, ReinsertingIdenticalEntryDoesNotGrowTheFile)
{
    std::string path = tempPath("reinsert");
    std::remove(path.c_str());
    CompileCache c(path);
    put(c, "req-1", "pay-1");
    std::size_t sz = fileBytes(path).size();
    put(c, "req-1", "pay-1");
    EXPECT_EQ(fileBytes(path).size(), sz);
    std::remove(path.c_str());
}

TEST(CompileCache, TruncatedTailIsDroppedNotServed)
{
    std::string path = tempPath("truncated");
    std::remove(path.c_str());
    {
        CompileCache c(path);
        put(c, "req-1", "pay-1");
        put(c, "req-2", "pay-2");
    }
    // Chop mid-entry: a torn append from a crash.
    std::string bytes = fileBytes(path);
    writeBytes(path, bytes.substr(0, bytes.size() - 3));

    CompileCache c(path);
    EXPECT_EQ(c.size(), 1u);
    EXPECT_GT(c.loadInfo().droppedBytes, 0u);
    std::string pay;
    EXPECT_TRUE(get(c, "req-1", &pay));
    EXPECT_FALSE(get(c, "req-2", &pay));
    // And the file was truncated back to the verified prefix, so
    // the torn bytes can never resurface.
    CompileCache again(path);
    EXPECT_EQ(again.loadInfo().droppedBytes, 0u);
    EXPECT_EQ(again.size(), 1u);
    std::remove(path.c_str());
}

TEST(CompileCache, CorruptPayloadByteFailsTheChecksum)
{
    std::string path = tempPath("corrupt");
    std::remove(path.c_str());
    {
        CompileCache c(path);
        put(c, "req-1", "pay-1");
    }
    std::string bytes = fileBytes(path);
    bytes[bytes.size() - 1] ^= 0x01;  // flip one payload byte
    writeBytes(path, bytes);

    CompileCache c(path);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_GT(c.loadInfo().droppedBytes, 0u);
    std::string pay;
    EXPECT_FALSE(get(c, "req-1", &pay));
    std::remove(path.c_str());
}

TEST(CompileCache, ForeignHeaderRebuildsEmpty)
{
    std::string path = tempPath("foreign");
    writeBytes(path, "this is not a tqan cache file at all");
    CompileCache c(path);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_TRUE(c.loadInfo().rebuilt);
    // The rebuilt store must work: insert, reopen, hit.
    put(c, "req-1", "pay-1");
    CompileCache again(path);
    std::string pay;
    EXPECT_TRUE(get(again, "req-1", &pay));
    EXPECT_FALSE(again.loadInfo().rebuilt);
    std::remove(path.c_str());
}

TEST(CompileCache, WrongKeyForContentIsRejectedOnLoad)
{
    std::string path = tempPath("badkey");
    std::remove(path.c_str());
    {
        CompileCache c(path);
        put(c, "req-1", "pay-1");
    }
    // Flip a key bit but fix nothing else: lengths and checksum
    // still verify, yet key != fnv1a64(request) — load must drop it
    // (the key IS the content address).
    std::string bytes = fileBytes(path);
    bytes[16] ^= 0x01;  // first key byte, right after the header
    writeBytes(path, bytes);
    CompileCache c(path);
    EXPECT_EQ(c.size(), 0u);
    std::remove(path.c_str());
}

TEST(CompileCache, InjectedPartialAppendIsDroppedAndRecompilesIdentically)
{
    std::string path = tempPath("torn_append");
    std::remove(path.c_str());
    {
        CompileCache c(path);
        put(c, "req-1", "pay-1");

        // Crash mid-append: half of req-2's entry reaches the disk.
        // insert() degrades gracefully — the entry is still served
        // from memory this run — and the torn tail must be dropped
        // on the next open.
        robust::setFaultPlan(
            robust::parseFaultPlan("cache.append:1:fail"));
        put(c, "req-2", "pay-2");
        robust::clearFaultPlan();
        std::string pay;
        ASSERT_TRUE(get(c, "req-2", &pay));
        EXPECT_EQ(pay, "pay-2");
    }
    {
        CompileCache again(path);
        EXPECT_EQ(again.size(), 1u);
        EXPECT_GT(again.loadInfo().droppedBytes, 0u);
        std::string pay;
        EXPECT_FALSE(get(again, "req-2", &pay));
        // "Recompile" the lost entry: the identical insert must land
        // durably this time.
        put(again, "req-2", "pay-2");
    }
    CompileCache third(path);
    EXPECT_EQ(third.size(), 2u);
    EXPECT_EQ(third.loadInfo().droppedBytes, 0u);
    std::string pay;
    ASSERT_TRUE(get(third, "req-2", &pay));
    EXPECT_EQ(pay, "pay-2");
    std::remove(path.c_str());
}

TEST(CompileCache, InjectedLookupMissForcesOneIdenticalRecompute)
{
    CompileCache c;
    put(c, "req-1", "pay-1");
    robust::setFaultPlan(
        robust::parseFaultPlan("cache.lookup:1:fail"));
    std::string pay;
    EXPECT_FALSE(get(c, "req-1", &pay));  // forced miss
    robust::clearFaultPlan();
    // The caller recompiles and re-inserts; identical bytes, and the
    // next lookup hits again.
    put(c, "req-1", "pay-1");
    EXPECT_EQ(c.size(), 1u);
    ASSERT_TRUE(get(c, "req-1", &pay));
    EXPECT_EQ(pay, "pay-1");
}

TEST(CompileCache, TransientOpenFaultIsRetriedAndCounted)
{
    std::string path = tempPath("open_retry");
    std::remove(path.c_str());
    {
        CompileCache c(path);
        put(c, "req-1", "pay-1");
    }
    robust::setFaultPlan(
        robust::parseFaultPlan("cache.open:1:fail"));
    CompileCache c(path);
    robust::clearFaultPlan();
    EXPECT_GE(c.loadInfo().retries, 1u);
    std::string pay;
    ASSERT_TRUE(get(c, "req-1", &pay));
    EXPECT_EQ(pay, "pay-1");
    std::remove(path.c_str());
}

TEST(CompileCache, LaterEntryForSameKeyWinsOnLoad)
{
    std::string path = tempPath("laterwins");
    std::remove(path.c_str());
    {
        CompileCache c(path);
        put(c, "req-1", "pay-old");
    }
    {
        // A second process run that recomputed the entry (e.g.
        // after a payload-format change would have changed the
        // canonical text; here we force it by hand).
        CompileCache c(path);
        c.insert(core::fnv1a64("req-1"), "req-1", "pay-new");
    }
    CompileCache c(path);
    std::string pay;
    ASSERT_TRUE(get(c, "req-1", &pay));
    EXPECT_EQ(pay, "pay-new");
    std::remove(path.c_str());
}
