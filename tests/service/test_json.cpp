/**
 * @file
 * Tests of the strict JSONL protocol parser: flat objects only,
 * duplicate keys and trailing bytes rejected, numbers validated as
 * whole tokens (the repo-wide no-prefix-parse convention).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "service/json.h"

using namespace tqan::service;

TEST(JsonParse, ReadsAFlatObject)
{
    JsonObject o = parseJsonObject(
        "{\"s\":\"hi\\n\",\"n\":-1.5e3,\"b\":true,\"z\":null}");
    EXPECT_EQ(o.at("s").kind, JsonValue::Kind::String);
    EXPECT_EQ(o.at("s").text, "hi\n");
    EXPECT_EQ(o.at("n").kind, JsonValue::Kind::Number);
    EXPECT_EQ(o.at("n").text, "-1.5e3");
    EXPECT_TRUE(o.at("b").boolean);
    EXPECT_EQ(o.at("z").kind, JsonValue::Kind::Null);
    EXPECT_TRUE(parseJsonObject("{}").empty());
    EXPECT_TRUE(parseJsonObject("  { }  ").empty());
}

TEST(JsonParse, RejectsMalformedInput)
{
    for (const char *bad : {
             "",
             "{",
             "{\"a\":1",
             "{\"a\":1}x",                  // trailing bytes
             "{\"a\":1,\"a\":2}",           // duplicate key
             "{\"a\":{\"b\":1}}",           // nested object
             "{\"a\":[1,2]}",               // nested array
             "{\"a\":1x}",                  // junk-tailed number
             "{\"a\":tru}",
             "{\"a\":'x'}",
             "{\"a\":\"\\q\"}",             // unknown escape
             "{\"a\":\"\\u00ff\"}",         // non-ASCII escape
             "{\"a\":1,}",
             "{a:1}",
         }) {
        EXPECT_THROW(parseJsonObject(bad), std::invalid_argument)
            << "accepted: " << bad;
    }
}

TEST(JsonParse, EscapeRoundTrip)
{
    std::string raw = "a\"b\\c\nd\te\x01f";
    JsonObject o =
        parseJsonObject("{\"k\":\"" + jsonEscape(raw) + "\"}");
    EXPECT_EQ(o.at("k").text, raw);
}

TEST(JsonNumbers, StrictFullConsumptionParses)
{
    std::uint64_t u = 0;
    int i = 0;
    double d = 0.0;
    EXPECT_TRUE(parseU64("184467", &u));
    EXPECT_FALSE(parseU64("7junk", &u));
    EXPECT_FALSE(parseU64("-7", &u));
    EXPECT_FALSE(parseU64("7.5", &u));
    EXPECT_FALSE(parseU64("99999999999999999999999", &u));
    EXPECT_TRUE(parseI32("-42", &i));
    EXPECT_FALSE(parseI32("42x", &i));
    EXPECT_FALSE(parseI32("4e9", &i));
    EXPECT_TRUE(parseF64("-1.5e-3", &d));
    EXPECT_FALSE(parseF64("1.5x", &d));
    EXPECT_FALSE(parseF64("nan", &d));
    EXPECT_FALSE(parseF64("inf", &d));
}
