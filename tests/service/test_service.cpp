/**
 * @file
 * CompileService tests: protocol strictness, miss -> hit byte
 * identity, parity with the tqanc compile path, restart persistence,
 * corrupted-store recovery, stats, and the serve() daemon loop
 * (in-order responses, bounded admission, deadlines).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/compiler.h"
#include "core/metrics.h"
#include "decomp/pass.h"
#include "device/devices.h"
#include "ham/parser.h"
#include "ham/trotter.h"
#include "qcir/qasm.h"
#include "service/service.h"

using namespace tqan;
using service::CompileService;
using service::JsonObject;
using service::ServiceOptions;

namespace {

const char *kHam = "qubits 3\\npair 0 1 0 0 0.7\\npair 1 2 0 0 0.7\\n";

std::string
compileLine(const std::string &id, const std::string &extra = "",
            const std::string &device = "line:4")
{
    return "{\"type\":\"compile\",\"id\":\"" + id +
           "\",\"ham\":\"" + kHam + "\",\"device\":\"" + device +
           "\"" + extra + "}";
}

/** Responses are flat JSON objects, so the service's own strict
 * parser can decode them for assertions. */
JsonObject
decoded(const std::string &response)
{
    return service::parseJsonObject(response);
}

std::string
strOf(const JsonObject &obj, const std::string &key)
{
    auto it = obj.find(key);
    return it == obj.end() ? std::string() : it->second.text;
}

std::string
tempCache(const std::string &name)
{
    return testing::TempDir() + "tqan_service_" + name + ".bin";
}

} // namespace

TEST(CompileService, MissThenHitAreByteIdentical)
{
    CompileService svc;
    std::string first = svc.handleLine(compileLine("r1"));
    std::string second = svc.handleLine(compileLine("r1"));
    JsonObject a = decoded(first), b = decoded(second);
    EXPECT_EQ(strOf(a, "status"), "ok") << first;
    EXPECT_EQ(strOf(a, "cache"), "miss");
    EXPECT_EQ(strOf(b, "cache"), "hit");
    // Identical apart from the cache marker itself.
    a.erase("cache");
    b.erase("cache");
    EXPECT_EQ(a, b);
    EXPECT_EQ(svc.stats().hits, 1u);
    EXPECT_EQ(svc.stats().misses, 1u);
}

TEST(CompileService, ResponseMatchesTheTqancCompilePath)
{
    // The exact pipeline tools/tqanc.cpp runs for
    //   tqanc - --device line:4 --qasm
    ham::TwoLocalHamiltonian h = ham::parseHamiltonian(
        "qubits 3\npair 0 1 0 0 0.7\npair 1 2 0 0 0.7\n");
    device::Topology topo = device::deviceByName("line:4");
    qcir::Circuit step = ham::trotterStep(h, 1.0);
    const core::CompilerBackend &backend =
        core::backendByName("2qan");
    core::CompileJob job;
    job.step = &step;
    job.hamiltonian = &h;
    core::CompileResult res = backend.compile(job, topo);
    core::CompilationMetrics m =
        backend.metrics(res, step, device::GateSet::Cnot);
    std::string qasm = qcir::toQasm(
        decomp::decomposeToCnot(res.sched.deviceCircuit));

    CompileService svc;
    JsonObject r = decoded(svc.handleLine(compileLine("r1")));
    ASSERT_EQ(strOf(r, "status"), "ok");
    EXPECT_EQ(strOf(r, "qasm"), qasm);
    EXPECT_EQ(strOf(r, "swaps"), std::to_string(m.swaps));
    EXPECT_EQ(strOf(r, "dressed"), std::to_string(m.dressed));
    EXPECT_EQ(strOf(r, "native2q"), std::to_string(m.native2q));
    EXPECT_EQ(strOf(r, "depth2q"), std::to_string(m.depth2q));
    EXPECT_EQ(strOf(r, "depth_all"), std::to_string(m.depthAll));
}

TEST(CompileService, NoiseAwareMatchesTqancSeedDerivation)
{
    // tqanc --noise-aware synthesizes calibration from
    // seed ^ 0xCA11B8A7E; the service must derive identically, and
    // the noise map must flow into the key (different seed,
    // different key).
    CompileService svc;
    JsonObject a = decoded(svc.handleLine(
        compileLine("r1", ",\"noise_aware\":true,\"seed\":7")));
    JsonObject b = decoded(svc.handleLine(
        compileLine("r2", ",\"noise_aware\":true,\"seed\":8")));
    JsonObject plain =
        decoded(svc.handleLine(compileLine("r3", ",\"seed\":7")));
    ASSERT_EQ(strOf(a, "status"), "ok");
    ASSERT_EQ(strOf(b, "status"), "ok");
    EXPECT_NE(strOf(a, "key"), strOf(b, "key"));
    EXPECT_NE(strOf(a, "key"), strOf(plain, "key"));
}

TEST(CompileService, PersistsAcrossRestart)
{
    std::string path = tempCache("restart");
    std::remove(path.c_str());
    ServiceOptions opt;
    opt.cachePath = path;
    std::string cold, warm;
    {
        CompileService svc(opt);
        cold = svc.handleLine(compileLine("r1"));
    }
    {
        CompileService svc(opt);  // fresh daemon, same store
        EXPECT_EQ(svc.cacheLoadInfo().loadedEntries, 1u);
        warm = svc.handleLine(compileLine("r1"));
        EXPECT_EQ(svc.stats().hits, 1u);
        EXPECT_EQ(svc.stats().misses, 0u);
    }
    JsonObject a = decoded(cold), b = decoded(warm);
    EXPECT_EQ(strOf(a, "cache"), "miss");
    EXPECT_EQ(strOf(b, "cache"), "hit");
    a.erase("cache");
    b.erase("cache");
    EXPECT_EQ(a, b);
    std::remove(path.c_str());
}

TEST(CompileService, CorruptedStoreIsRebuiltNotServed)
{
    std::string path = tempCache("corrupt");
    std::remove(path.c_str());
    ServiceOptions opt;
    opt.cachePath = path;
    std::string cold;
    {
        CompileService svc(opt);
        cold = svc.handleLine(compileLine("r1"));
    }
    {
        // Flip one byte in the stored payload region.
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(-2, std::ios::end);
        char c = 0;
        f.seekg(-2, std::ios::end);
        f.get(c);
        f.seekp(-2, std::ios::end);
        f.put(static_cast<char>(c ^ 0x01));
    }
    CompileService svc(opt);
    EXPECT_EQ(svc.cacheLoadInfo().loadedEntries, 0u);
    EXPECT_GT(svc.cacheLoadInfo().droppedBytes, 0u);
    // Recompiled from scratch, same bytes as the original cold run.
    std::string recompiled = svc.handleLine(compileLine("r1"));
    EXPECT_EQ(svc.stats().misses, 1u);
    EXPECT_EQ(recompiled, cold);
    std::remove(path.c_str());
}

TEST(CompileService, RejectsMalformedRequests)
{
    CompileService svc;
    std::vector<std::string> bad = {
        "not json at all",
        "{\"type\":\"compile\"}",            // missing ham
        "{\"ham\":\"qubits 2\\n\"}",         // missing type
        "{\"type\":\"frobnicate\",\"ham\":\"x\"}",
        compileLine("r1", ",\"bogus_field\":1"),  // unknown field
        "{\"type\":\"compile\",\"ham\":\"qubits 2\\n\","
        "\"seed\":7.5}",                     // non-integer seed
        "{\"type\":\"compile\",\"ham\":\"qubits 2\\n\","
        "\"trials\":0}",                     // below minimum
        "{\"type\":\"compile\",\"ham\":\"qubits 2\\n\","
        "\"device\":\"custom:4:0-1junk\"}",  // bad topology spec
        "{\"type\":\"compile\",\"ham\":\"qubits 2\\n\","
        "\"mapper\":\"bogus\"}",
    };
    for (const std::string &line : bad) {
        JsonObject r = decoded(svc.handleLine(line));
        EXPECT_EQ(strOf(r, "status"), "error")
            << "accepted: " << line;
    }
    EXPECT_EQ(svc.stats().errors, bad.size());
    EXPECT_EQ(svc.stats().misses, 0u);
}

TEST(CompileService, StatsRequestReportsCounters)
{
    CompileService svc;
    svc.handleLine(compileLine("r1"));
    svc.handleLine(compileLine("r1"));
    JsonObject s = decoded(
        svc.handleLine("{\"type\":\"stats\",\"id\":\"s1\"}"));
    EXPECT_EQ(strOf(s, "status"), "ok");
    EXPECT_EQ(strOf(s, "hits"), "1");
    EXPECT_EQ(strOf(s, "misses"), "1");
    EXPECT_EQ(strOf(s, "hit_rate"), "0.5000");
    EXPECT_EQ(strOf(s, "cache_entries"), "1");
}

TEST(CompileServiceServe, AnswersInRequestOrderAndDrains)
{
    std::string input;
    for (int i = 0; i < 6; ++i)
        input += compileLine("r" + std::to_string(i),
                             ",\"seed\":" + std::to_string(i)) +
                 "\n";
    input += "{\"type\":\"stats\",\"id\":\"s\"}\n";

    ServiceOptions opt;
    opt.jobs = 2;
    CompileService svc(opt);
    std::istringstream in(input);
    std::ostringstream out;
    svc.serve(in, out);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> ids;
    while (std::getline(lines, line))
        ids.push_back(strOf(decoded(line), "id"));
    ASSERT_EQ(ids.size(), 7u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(ids[i], "r" + std::to_string(i));
    EXPECT_EQ(ids[6], "s");
    EXPECT_EQ(svc.stats().misses, 6u);
    EXPECT_EQ(svc.stats().queueDepth, 0u);
}

TEST(CompileServiceServe, ServeMatchesHandleLineByteForByte)
{
    CompileService sync;
    std::string expect = sync.handleLine(compileLine("r1"));

    CompileService svc;
    std::istringstream in(compileLine("r1") + "\n");
    std::ostringstream out;
    svc.serve(in, out);
    EXPECT_EQ(out.str(), expect + "\n");
}

TEST(CompileServiceServe, ShutdownRequestStopsTheLoop)
{
    CompileService svc;
    std::istringstream in(
        compileLine("r1") +
        "\n{\"type\":\"shutdown\",\"id\":\"bye\"}\n" +
        compileLine("never") + "\n");
    std::ostringstream out;
    svc.serve(in, out);
    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> ids;
    while (std::getline(lines, line))
        ids.push_back(strOf(decoded(line), "id"));
    ASSERT_EQ(ids.size(), 2u);  // the line after shutdown is unread
    EXPECT_EQ(ids[0], "r1");
    EXPECT_EQ(ids[1], "bye");
}

TEST(CompileServiceServe, ExpiredDeadlineIsNotCompiled)
{
    // jobs=1 so the dispatcher handles one request at a time: while
    // r1 compiles, r2 (deadline well below r1's compile time) waits
    // in the queue and must come back "expired", not compiled.
    ServiceOptions opt;
    opt.jobs = 1;
    CompileService svc(opt);
    std::istringstream in(
        compileLine("r1", ",\"trials\":40", "grid:3x3") + "\n" +
        compileLine("r2", ",\"seed\":99,\"deadline_ms\":1e-6") +
        "\n");
    std::ostringstream out;
    svc.serve(in, out);
    std::istringstream lines(out.str());
    std::string line;
    std::getline(lines, line);
    EXPECT_EQ(strOf(decoded(line), "status"), "ok");
    std::getline(lines, line);
    EXPECT_EQ(strOf(decoded(line), "status"), "expired") << line;
    EXPECT_EQ(svc.stats().expired, 1u);
    EXPECT_EQ(svc.stats().misses, 1u);
}

TEST(CompileServiceServe, OverflowingTheQueueRejects)
{
    // One slow compile at the head, a bounded queue of 1 behind it:
    // flooding 10 more requests must reject at least one, and every
    // request still gets exactly one in-order response.
    ServiceOptions opt;
    opt.jobs = 1;
    opt.maxQueue = 1;
    CompileService svc(opt);
    std::string input =
        compileLine("r0", ",\"trials\":60", "grid:3x3") + "\n";
    for (int i = 1; i <= 10; ++i)
        input += compileLine("r" + std::to_string(i),
                             ",\"seed\":" + std::to_string(100 + i)) +
                 "\n";
    std::istringstream in(input);
    std::ostringstream out;
    svc.serve(in, out);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> ids;
    std::size_t rejected = 0;
    while (std::getline(lines, line)) {
        JsonObject r = decoded(line);
        ids.push_back(strOf(r, "id"));
        if (strOf(r, "status") == "rejected")
            ++rejected;
        else
            EXPECT_EQ(strOf(r, "status"), "ok") << line;
    }
    ASSERT_EQ(ids.size(), 11u);
    for (int i = 0; i <= 10; ++i)
        EXPECT_EQ(ids[i], "r" + std::to_string(i));
    EXPECT_GE(rejected, 1u);
    EXPECT_EQ(svc.stats().rejected, rejected);
}

TEST(CompileServiceServe, DuplicateInFlightRequestBecomesAHit)
{
    // Two identical requests back to back with jobs=1: the second
    // is admitted as a miss while the first compiles, then resolves
    // to a hit at dispatch — and the payloads are byte-identical.
    ServiceOptions opt;
    opt.jobs = 1;
    CompileService svc(opt);
    std::istringstream in(compileLine("a") + "\n" +
                          compileLine("b") + "\n");
    std::ostringstream out;
    svc.serve(in, out);
    std::istringstream lines(out.str());
    std::string first, second;
    std::getline(lines, first);
    std::getline(lines, second);
    JsonObject a = decoded(first), b = decoded(second);
    EXPECT_EQ(strOf(a, "status"), "ok");
    EXPECT_EQ(strOf(b, "status"), "ok");
    EXPECT_EQ(strOf(b, "cache"), "hit");
    a.erase("cache");
    a.erase("id");
    b.erase("cache");
    b.erase("id");
    EXPECT_EQ(a, b);
    EXPECT_EQ(svc.stats().misses, 1u);
    EXPECT_EQ(svc.stats().hits, 1u);
}
