/**
 * @file
 * Property tests for the peephole passes and the CZ decomposition
 * path: random circuits, unitary preservation, count monotonicity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "decomp/native_count.h"
#include "decomp/pass.h"
#include "sim/statevector.h"

using namespace tqan;
using namespace tqan::decomp;
using qcir::Circuit;
using qcir::Op;
using qcir::OpKind;

namespace {

/** Random 3-qubit circuit over application-level ops. */
Circuit
randomCircuit(std::mt19937_64 &rng, int n = 3, int len = 12)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    std::uniform_int_distribution<int> kind(0, 4);
    std::uniform_int_distribution<int> qubit(0, n - 1);
    Circuit c(n);
    for (int i = 0; i < len; ++i) {
        int a = qubit(rng), b = qubit(rng);
        while (b == a)
            b = qubit(rng);
        switch (kind(rng)) {
          case 0:
            c.add(Op::rx(a, ang(rng)));
            break;
          case 1:
            c.add(Op::rz(a, ang(rng)));
            break;
          case 2:
            c.add(Op::interact(a, b, ang(rng) / 4, ang(rng) / 4,
                               ang(rng) / 4));
            break;
          case 3:
            c.add(Op::interact(a, b, 0, 0, ang(rng) / 4));
            break;
          default:
            c.add(Op::swap(a, b));
            break;
        }
    }
    return c;
}

/** Statevector fidelity of two circuits on a random input state. */
double
circuitFidelity(const Circuit &a, const Circuit &b,
                std::mt19937_64 &rng)
{
    int n = a.numQubits();
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    sim::Statevector pa(n), pb(n);
    for (int q = 0; q < n; ++q) {
        auto u = linalg::rz(ang(rng)) * linalg::ry(ang(rng));
        pa.apply1q(q, u);
        pb.apply1q(q, u);
    }
    pa.applyCircuit(a);
    pb.applyCircuit(b);
    return pa.fidelityWith(pb);
}

} // namespace

class PeepholeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PeepholeProperty, MergeAdjacentSamePairPreservesUnitary)
{
    std::mt19937_64 rng(GetParam() * 31 + 5);
    Circuit c = randomCircuit(rng);
    Circuit merged = mergeAdjacentSamePair(c);
    EXPECT_LE(merged.twoQubitCount(), c.twoQubitCount());
    std::mt19937_64 srng(GetParam());
    EXPECT_NEAR(circuitFidelity(c, merged, srng), 1.0, 1e-9);
}

TEST_P(PeepholeProperty, DecomposeToCnotPreservesUnitary)
{
    std::mt19937_64 rng(GetParam() * 37 + 7);
    Circuit c = randomCircuit(rng);
    Circuit hw = decomposeToCnot(c);
    for (const auto &op : hw.ops())
        EXPECT_TRUE(!op.isTwoQubit() || op.kind == OpKind::Cnot);
    std::mt19937_64 srng(GetParam() + 100);
    EXPECT_NEAR(circuitFidelity(c, hw, srng), 1.0, 1e-8);
}

TEST_P(PeepholeProperty, DecomposeToCzPreservesUnitary)
{
    std::mt19937_64 rng(GetParam() * 41 + 9);
    Circuit c = randomCircuit(rng);
    Circuit hw = decomposeToCz(c);
    for (const auto &op : hw.ops())
        EXPECT_TRUE(!op.isTwoQubit() || op.kind == OpKind::Cz);
    std::mt19937_64 srng(GetParam() + 200);
    EXPECT_NEAR(circuitFidelity(c, hw, srng), 1.0, 1e-8);
}

TEST_P(PeepholeProperty, Merge1qPreservesUnitary)
{
    std::mt19937_64 rng(GetParam() * 43 + 11);
    Circuit c = randomCircuit(rng);
    Circuit merged = mergeAdjacent1q(c);
    std::mt19937_64 srng(GetParam() + 300);
    EXPECT_NEAR(circuitFidelity(c, merged, srng), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeProperty,
                         ::testing::Range(0, 10));

TEST(PeepholeCounts, MergedCircuitNeverCostsMore)
{
    // Peephole merging can only reduce the native-gate total (two
    // merged ops cost at most 3, the two separately at least 2+...).
    std::mt19937_64 rng(171);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c = randomCircuit(rng, 3, 16);
        Circuit merged = mergeAdjacentSamePair(c);
        EXPECT_LE(
            nativeTwoQubitCount(merged, device::GateSet::Cnot),
            nativeTwoQubitCount(c, device::GateSet::Cnot));
    }
}

TEST(PeepholeCounts, SwapPlusZzMergesToThreeCnots)
{
    // The exact optimization behind the paper's Fig. 4/5, but found
    // by the generic peephole: SWAP then ZZ on the same pair = one
    // 3-CNOT unitary.
    Circuit c(2);
    c.add(Op::swap(0, 1));
    c.add(Op::interact(0, 1, 0, 0, 0.37));
    Circuit merged = mergeAdjacentSamePair(c);
    ASSERT_EQ(merged.size(), 1);
    EXPECT_EQ(nativeTwoQubitCount(merged, device::GateSet::Cnot), 3);
    EXPECT_EQ(nativeTwoQubitCount(c, device::GateSet::Cnot), 5);
}
