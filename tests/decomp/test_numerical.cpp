/**
 * @file
 * Tests for the numerical template decomposition (the paper's [47]
 * style synthesis used for non-CNOT gate sets).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "decomp/native_count.h"
#include "decomp/numerical.h"

using namespace tqan;
using namespace tqan::decomp;
using namespace tqan::linalg;
using tqan::device::GateSet;

namespace {

Mat4
opsUnitary(const std::vector<qcir::Op> &ops)
{
    Mat4 u = Mat4::identity();
    for (const auto &op : ops) {
        Mat4 g;
        if (op.isTwoQubit()) {
            g = op.unitary4();
            if (op.q0 == 1)
                g = swapGate() * g * swapGate();
        } else {
            Mat2 m = op.unitary2();
            g = op.q0 == 0 ? kron(Mat2::identity(), m)
                           : kron(m, Mat2::identity());
        }
        u = g * u;
    }
    return u;
}

} // namespace

TEST(Numerical, ZzWithTwoCnots)
{
    std::mt19937_64 rng(121);
    Mat4 target = expXxYyZz(0, 0, 0.4);
    NumericalOptions opt;
    opt.tol = 1e-5;
    auto ops = numericalDecompose(target, 0, 1, GateSet::Cnot, 2, rng,
                                  opt);
    ASSERT_TRUE(ops.has_value());
    EXPECT_LT(phaseDistance(opsUnitary(*ops), target), 1e-4);
    int twoq = 0;
    for (const auto &o : *ops)
        if (o.isTwoQubit())
            ++twoq;
    EXPECT_EQ(twoq, 2);
}

TEST(Numerical, ZzWithTwoSycs)
{
    // Confirms the SYC count rule: a ZZ interaction fits in 2 SYC.
    std::mt19937_64 rng(122);
    Mat4 target = expXxYyZz(0, 0, 0.4);
    NumericalOptions opt;
    opt.tol = 1e-4;
    opt.restarts = 20;
    double fit = bestTemplateFit(target, GateSet::Syc, 2, rng, opt);
    EXPECT_LT(fit, 1e-3);
}

TEST(Numerical, ZzNotReachableWithOneGate)
{
    // One CNOT cannot implement a generic ZZ rotation: the best fit
    // stays far from zero.
    std::mt19937_64 rng(123);
    Mat4 target = expXxYyZz(0, 0, 0.4);
    NumericalOptions opt;
    opt.restarts = 6;
    opt.iters = 150;
    double fit = bestTemplateFit(target, GateSet::Cnot, 1, rng, opt);
    EXPECT_GT(fit, 0.05);
}

TEST(Numerical, CnotFromTwoIswaps)
{
    // Known construction: CNOT = locals + 2 iSWAP + locals.
    std::mt19937_64 rng(124);
    NumericalOptions opt;
    opt.tol = 1e-4;
    opt.restarts = 20;
    double fit =
        bestTemplateFit(cnot(0, 1), GateSet::ISwap, 2, rng, opt);
    EXPECT_LT(fit, 1e-3);
}
