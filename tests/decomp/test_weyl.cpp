/**
 * @file
 * Tests for the local-equivalence analysis: SBM CNOT counts, class
 * predicates, Weyl coordinates, and the per-gate-set native counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "decomp/native_count.h"
#include "decomp/weyl.h"

using namespace tqan;
using namespace tqan::decomp;
using namespace tqan::linalg;
using tqan::device::GateSet;

namespace {

Mat2
randomSu2(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    return rz(ang(rng)) * ry(ang(rng)) * rz(ang(rng));
}

Mat4
dressLocal(const Mat4 &u, std::mt19937_64 &rng)
{
    return kron(randomSu2(rng), randomSu2(rng)) * u *
           kron(randomSu2(rng), randomSu2(rng));
}

} // namespace

TEST(CnotCount, KnownGates)
{
    EXPECT_EQ(cnotCount(Mat4::identity()), 0);
    EXPECT_EQ(cnotCount(cnot(0, 1)), 1);
    EXPECT_EQ(cnotCount(czGate()), 1);
    EXPECT_EQ(cnotCount(iswapGate()), 2);
    EXPECT_EQ(cnotCount(swapGate()), 3);
    EXPECT_EQ(cnotCount(sycGate()), 3);
}

TEST(CnotCount, InteractionOps)
{
    // exp(i theta ZZ): 2 CNOTs for generic theta.
    EXPECT_EQ(cnotCount(expXxYyZz(0, 0, 0.3)), 2);
    // theta = pi/4 is the CZ/CNOT class.
    EXPECT_EQ(cnotCount(expXxYyZz(0, 0, M_PI / 4)), 1);
    // theta multiple of pi/2 is local.
    EXPECT_EQ(cnotCount(expXxYyZz(0, 0, M_PI / 2)), 0);
    // XY-class (two axes): still 2 CNOTs.
    EXPECT_EQ(cnotCount(expXxYyZz(0.4, 0.7, 0)), 2);
    // Heisenberg (three axes): 3 CNOTs.
    EXPECT_EQ(cnotCount(expXxYyZz(0.4, 0.7, 0.2)), 3);
}

TEST(CnotCount, InvariantUnderLocals)
{
    std::mt19937_64 rng(31);
    for (int trial = 0; trial < 30; ++trial) {
        Mat4 gates[] = {cnot(0, 1), swapGate(),
                        expXxYyZz(0.3, 0.5, 0.0),
                        expXxYyZz(0.3, 0.5, 0.7)};
        for (const Mat4 &g : gates)
            EXPECT_EQ(cnotCount(dressLocal(g, rng)), cnotCount(g));
    }
}

TEST(ClassPredicates, KnownGates)
{
    std::mt19937_64 rng(32);
    EXPECT_TRUE(isLocalClass(kron(randomSu2(rng), randomSu2(rng))));
    EXPECT_FALSE(isLocalClass(cnot(0, 1)));

    EXPECT_TRUE(isCnotClass(cnot(0, 1)));
    EXPECT_TRUE(isCnotClass(czGate()));
    EXPECT_FALSE(isCnotClass(iswapGate()));

    EXPECT_TRUE(isIswapClass(iswapGate()));
    EXPECT_FALSE(isIswapClass(cnot(0, 1)));
    EXPECT_FALSE(isIswapClass(swapGate()));

    EXPECT_TRUE(isSwapClass(swapGate()));
    EXPECT_FALSE(isSwapClass(iswapGate()));

    EXPECT_TRUE(isSycClass(sycGate()));
    EXPECT_FALSE(isSycClass(swapGate()));
    EXPECT_FALSE(isSycClass(iswapGate()));

    EXPECT_TRUE(hasZeroCz(cnot(0, 1)));
    EXPECT_TRUE(hasZeroCz(iswapGate()));
    EXPECT_TRUE(hasZeroCz(expXxYyZz(0.3, 0.8, 0.0)));
    EXPECT_FALSE(hasZeroCz(swapGate()));
    EXPECT_FALSE(hasZeroCz(expXxYyZz(0.3, 0.8, 0.2)));
}

TEST(WeylCoords, KnownGates)
{
    auto w = weylCoordinates(cnot(0, 1));
    EXPECT_NEAR(w.cx, M_PI / 4, 1e-7);
    EXPECT_NEAR(w.cy, 0.0, 1e-7);
    EXPECT_NEAR(w.cz, 0.0, 1e-7);

    w = weylCoordinates(iswapGate());
    EXPECT_NEAR(w.cx, M_PI / 4, 1e-7);
    EXPECT_NEAR(w.cy, M_PI / 4, 1e-7);
    EXPECT_NEAR(w.cz, 0.0, 1e-7);

    w = weylCoordinates(swapGate());
    EXPECT_NEAR(w.cx, M_PI / 4, 1e-7);
    EXPECT_NEAR(w.cy, M_PI / 4, 1e-7);
    EXPECT_NEAR(std::abs(w.cz), M_PI / 4, 1e-7);

    w = weylCoordinates(sycGate());
    EXPECT_NEAR(w.cx, M_PI / 4, 1e-7);
    EXPECT_NEAR(w.cy, M_PI / 4, 1e-7);
    EXPECT_NEAR(std::abs(w.cz), M_PI / 24, 1e-7);
}

TEST(WeylCoords, InteractionCoefficientsRecovered)
{
    std::mt19937_64 rng(33);
    std::uniform_real_distribution<double> coeff(0.02, M_PI / 4 - 0.02);
    for (int trial = 0; trial < 20; ++trial) {
        // Coefficients inside the chamber: recovered up to ordering.
        double a = coeff(rng), b = coeff(rng), c = coeff(rng);
        double v[3] = {a, b, c};
        std::sort(v, v + 3, std::greater<double>());
        auto w = weylCoordinates(dressLocal(expXxYyZz(a, b, c), rng));
        EXPECT_NEAR(w.cx, v[0], 1e-6);
        EXPECT_NEAR(w.cy, v[1], 1e-6);
        EXPECT_NEAR(std::abs(w.cz), v[2], 1e-6);
    }
}

TEST(NativeCount, PerGateSetKnownGates)
{
    // SWAP costs 3 in every basis.
    for (GateSet gs : {GateSet::Cnot, GateSet::Cz, GateSet::ISwap,
                       GateSet::Syc})
        EXPECT_EQ(nativeCount(swapGate(), gs), 3);

    // exp(i theta ZZ) costs 2 in every basis.
    Mat4 zz = expXxYyZz(0, 0, 0.4);
    for (GateSet gs : {GateSet::Cnot, GateSet::Cz, GateSet::ISwap,
                       GateSet::Syc})
        EXPECT_EQ(nativeCount(zz, gs), 2);

    // Heisenberg-style op costs 3 everywhere.
    Mat4 heis = expXxYyZz(0.3, 0.5, 0.7);
    for (GateSet gs : {GateSet::Cnot, GateSet::Cz, GateSet::ISwap,
                       GateSet::Syc})
        EXPECT_EQ(nativeCount(heis, gs), 3);

    // Native gates count 1 in their own basis.
    EXPECT_EQ(nativeCount(cnot(0, 1), GateSet::Cnot), 1);
    EXPECT_EQ(nativeCount(iswapGate(), GateSet::ISwap), 1);
    EXPECT_EQ(nativeCount(sycGate(), GateSet::Syc), 1);
    // ... and the XY class costs 2 iSWAPs.
    EXPECT_EQ(nativeCount(expXxYyZz(0.3, 0.6, 0), GateSet::ISwap), 2);
}

TEST(NativeCount, DressedSwapCostsThree)
{
    // The core claim behind unitary unifying: a dressed SWAP is a
    // generic three-axis gate, same cost as the circuit gate alone.
    Mat4 dressed = swapGate() * expXxYyZz(0.0, 0.0, 0.4);
    for (GateSet gs : {GateSet::Cnot, GateSet::Cz, GateSet::ISwap,
                       GateSet::Syc})
        EXPECT_EQ(nativeCount(dressed, gs), 3);
}

TEST(NativeCount, OpInterface)
{
    using tqan::qcir::Op;
    EXPECT_EQ(nativeCountOp(Op::interact(0, 1, 0, 0, 0.4),
                            GateSet::Cnot),
              2);
    EXPECT_EQ(nativeCountOp(Op::swap(0, 1), GateSet::Cnot), 3);
    EXPECT_EQ(nativeCountOp(Op::dressedSwap(0, 1, 0, 0, 0.4),
                            GateSet::Cnot),
              3);
    EXPECT_EQ(nativeCountOp(Op::cnot(0, 1), GateSet::Cnot), 1);
    EXPECT_EQ(nativeCountOp(Op::cnot(0, 1), GateSet::Cz), 1);
    EXPECT_THROW(nativeCountOp(Op::rx(0, 0.1), GateSet::Cnot),
                 std::invalid_argument);
}

TEST(NativeCount, CircuitTotal)
{
    using tqan::qcir::Circuit;
    using tqan::qcir::Op;
    Circuit c(3);
    c.add(Op::interact(0, 1, 0, 0, 0.4));  // 2
    c.add(Op::swap(1, 2));                 // 3
    c.add(Op::rx(0, 0.2));                 // 0
    EXPECT_EQ(nativeTwoQubitCount(c, GateSet::Cnot), 5);
}
