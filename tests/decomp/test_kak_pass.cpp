/**
 * @file
 * Tests for the KAK decomposition and the whole-circuit decomposition
 * passes (exact synthesis + peepholes + metric expansion).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "decomp/kak.h"
#include "decomp/pass.h"

using namespace tqan;
using namespace tqan::decomp;
using namespace tqan::linalg;
using qcir::Circuit;
using qcir::Op;
using qcir::OpKind;

namespace {

Mat2
randomSu2(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    return rz(ang(rng)) * ry(ang(rng)) * rz(ang(rng));
}

/** Generic random SU(4) element via its own KAK form. */
Mat4
randomU4(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> coeff(-1.5, 1.5);
    return kron(randomSu2(rng), randomSu2(rng)) *
           expXxYyZz(coeff(rng), coeff(rng), coeff(rng)) *
           kron(randomSu2(rng), randomSu2(rng));
}

/** Dense 4x4 unitary of a 2-qubit circuit (qubits 0 and 1). */
Mat4
circuitUnitary2q(const Circuit &c)
{
    Mat4 u = Mat4::identity();
    for (const auto &op : c.ops()) {
        Mat4 g;
        if (op.isTwoQubit()) {
            // Ops are emitted on (q0, q1) in either orientation.
            g = op.unitary4();
            if (op.q0 == 1) {
                g = swapGate() * g * swapGate();
            }
        } else {
            Mat2 m = op.unitary2();
            g = op.q0 == 0 ? kron(Mat2::identity(), m)
                           : kron(m, Mat2::identity());
        }
        u = g * u;
    }
    return u;
}

} // namespace

TEST(Kak, RoundTripRandomUnitaries)
{
    std::mt19937_64 rng(41);
    for (int trial = 0; trial < 200; ++trial) {
        Mat4 u = randomU4(rng);
        Kak k = kakDecompose(u);
        EXPECT_LT(k.reconstruct().distance(u), 1e-6) << trial;
        EXPECT_TRUE(k.a0.isUnitary(1e-7));
        EXPECT_TRUE(k.b1.isUnitary(1e-7));
    }
}

TEST(Kak, SpecialGates)
{
    for (const Mat4 &g : {cnot(0, 1), czGate(), swapGate(),
                          iswapGate(), sycGate(), Mat4::identity()}) {
        Kak k = kakDecompose(g);
        EXPECT_LT(k.reconstruct().distance(g), 1e-7);
    }
}

TEST(DecomposeToCnot, SingleInteractUnitaryExact)
{
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> coeff(-2.0, 2.0);
    for (int trial = 0; trial < 50; ++trial) {
        double a = coeff(rng), b = coeff(rng), c = coeff(rng);
        if (trial % 4 == 0)
            b = 0.0;
        if (trial % 5 == 0)
            c = 0.0;
        Circuit in(2);
        in.add(Op::interact(0, 1, a, b, c));
        Circuit out = decomposeToCnot(in);
        for (const auto &op : out.ops()) {
            EXPECT_TRUE(op.kind == OpKind::Cnot ||
                        !op.isTwoQubit());
        }
        EXPECT_LT(phaseDistance(circuitUnitary2q(out),
                                expXxYyZz(a, b, c)),
                  1e-9)
            << "a=" << a << " b=" << b << " c=" << c;
    }
}

TEST(DecomposeToCnot, SwapIsThreeCnots)
{
    Circuit in(2);
    in.add(Op::swap(0, 1));
    Circuit out = decomposeToCnot(in);
    EXPECT_EQ(out.countKind(OpKind::Cnot), 3);
    EXPECT_LT(phaseDistance(circuitUnitary2q(out), swapGate()),
              1e-10);
}

TEST(DecomposeToCnot, DressedZzSwapIsThreeCnots)
{
    // The paper's Fig. 5: SWAP * exp(i theta ZZ) needs only 3 CNOTs;
    // the emission + adjacent-CNOT cancellation must find this.
    Circuit in(2);
    in.add(Op::dressedSwap(0, 1, 0.0, 0.0, 0.37));
    Circuit out = decomposeToCnot(in);
    EXPECT_EQ(out.countKind(OpKind::Cnot), 3);
    Mat4 expect = swapGate() * expXxYyZz(0.0, 0.0, 0.37);
    EXPECT_LT(phaseDistance(circuitUnitary2q(out), expect), 1e-9);
}

TEST(DecomposeToCnot, GenericDressedSwapExact)
{
    Circuit in(2);
    in.add(Op::dressedSwap(0, 1, 0.3, 0.5, 0.7));
    Circuit out = decomposeToCnot(in);
    Mat4 expect = swapGate() * expXxYyZz(0.3, 0.5, 0.7);
    EXPECT_LT(phaseDistance(circuitUnitary2q(out), expect), 1e-9);
}

TEST(DecomposeToCnot, U2qViaKak)
{
    std::mt19937_64 rng(43);
    for (int trial = 0; trial < 20; ++trial) {
        Mat4 u = randomU4(rng);
        Circuit in(2);
        in.add(Op::u2q(0, 1, u));
        Circuit out = decomposeToCnot(in);
        EXPECT_LT(phaseDistance(circuitUnitary2q(out), u), 1e-6);
    }
}

TEST(DecomposeToCz, UnitaryExactAndCzOnly)
{
    Circuit in(2);
    in.add(Op::interact(0, 1, 0.4, 0.0, 0.9));
    Circuit out = decomposeToCz(in);
    for (const auto &op : out.ops()) {
        if (op.isTwoQubit()) {
            EXPECT_EQ(op.kind, OpKind::Cz);
        }
    }
    EXPECT_LT(phaseDistance(circuitUnitary2q(out),
                            expXxYyZz(0.4, 0.0, 0.9)),
              1e-9);
}

TEST(Peephole, CancelAdjacentCnots)
{
    Circuit c(3);
    c.add(Op::cnot(0, 1));
    c.add(Op::cnot(0, 1));
    c.add(Op::cnot(1, 2));
    Circuit out = cancelAdjacentCnots(c);
    EXPECT_EQ(out.countKind(OpKind::Cnot), 1);
    EXPECT_EQ(out.op(0).q0, 1);
}

TEST(Peephole, NoCancelAcrossBlockingOp)
{
    Circuit c(2);
    c.add(Op::cnot(0, 1));
    c.add(Op::rx(1, 0.3));
    c.add(Op::cnot(0, 1));
    Circuit out = cancelAdjacentCnots(c);
    EXPECT_EQ(out.countKind(OpKind::Cnot), 2);
}

TEST(Peephole, MergeAdjacent1q)
{
    Circuit c(2);
    c.add(Op::rz(0, 0.2));
    c.add(Op::rz(0, 0.3));
    c.add(Op::rx(1, 0.1));
    Circuit out = mergeAdjacent1q(c);
    EXPECT_EQ(out.size(), 2);
    EXPECT_LT(out.op(0).unitary2().distance(rz(0.5)), 1e-12);
}

TEST(Peephole, MergeAdjacentSamePair)
{
    Circuit c(3);
    c.add(Op::interact(0, 1, 0, 0, 0.4));
    c.add(Op::rz(0, 0.3));
    c.add(Op::interact(1, 0, 0.2, 0, 0));
    c.add(Op::interact(1, 2, 0, 0, 0.5));
    Circuit out = mergeAdjacentSamePair(c);
    // First two 2q ops + the 1q in between merge to one U2q.
    EXPECT_EQ(out.twoQubitCount(), 2);
    EXPECT_EQ(out.op(0).kind, OpKind::U2q);

    Mat4 expect = expXxYyZz(0.2, 0, 0) *
                  kron(Mat2::identity(), rz(0.3)) *
                  expXxYyZz(0, 0, 0.4);
    EXPECT_LT(phaseDistance(out.op(0).unitary4(), expect), 1e-12);
}

TEST(ExpandForMetrics, CountsMatchAnalytic)
{
    Circuit c(4);
    c.add(Op::interact(0, 1, 0, 0, 0.4));       // ZZ: 2
    c.add(Op::interact(1, 2, 0.3, 0.5, 0.7));   // Heisenberg: 3
    c.add(Op::swap(2, 3));                      // 3
    c.add(Op::dressedSwap(0, 1, 0.1, 0.2, 0.3));// 3
    Circuit out = expandForMetrics(c, device::GateSet::Cnot);
    EXPECT_EQ(out.twoQubitCount(), 11);
    for (const auto &op : out.ops()) {
        if (op.isTwoQubit()) {
            EXPECT_EQ(op.kind, OpKind::Cnot);
        }
    }
    // Depth: (0,1) chain has 2+3 = 5 sequential CNOTs, (1,2) 3, the
    // critical path through qubit 1 is 2 + 3 = 5... measured value
    // must at least dominate the per-pair counts.
    EXPECT_GE(out.twoQubitDepth(), 5);
}
