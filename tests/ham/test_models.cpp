/**
 * @file
 * Unit tests for Hamiltonian models, Trotterization and QAOA support.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/random_graph.h"
#include "ham/models.h"
#include "ham/qaoa.h"
#include "ham/trotter.h"

using namespace tqan::ham;
using tqan::graph::Graph;

TEST(Models, NnnChainEdgeCount)
{
    // Paper Sec. IV: 2n - 3 two-qubit operators per step.
    for (int n : {6, 10, 26, 50})
        EXPECT_EQ(static_cast<int>(nnnChainEdges(n).size()), 2 * n - 3);
}

TEST(Models, IsingStructure)
{
    std::mt19937_64 rng(7);
    auto h = nnnIsing(8, rng);
    EXPECT_EQ(static_cast<int>(h.pairs().size()), 13);
    EXPECT_EQ(static_cast<int>(h.fields().size()), 8);
    for (const auto &p : h.pairs()) {
        EXPECT_EQ(p.xx, 0.0);
        EXPECT_EQ(p.yy, 0.0);
        EXPECT_GT(p.zz, 0.0);
        EXPECT_LT(p.zz, M_PI);
    }
    EXPECT_TRUE(h.isDiagonal());
}

TEST(Models, HeisenbergStructure)
{
    std::mt19937_64 rng(8);
    auto h = nnnHeisenberg(10, rng);
    EXPECT_EQ(static_cast<int>(h.pairs().size()), 17);
    for (const auto &p : h.pairs()) {
        EXPECT_GT(p.xx, 0.0);
        EXPECT_GT(p.yy, 0.0);
        EXPECT_GT(p.zz, 0.0);
    }
    EXPECT_FALSE(h.isDiagonal());
    // 3 Pauli terms per pair in the un-unified view.
    EXPECT_EQ(h.pauliTerms().size(), 3u * 17u);
}

TEST(Models, XYHasNoZZ)
{
    std::mt19937_64 rng(9);
    auto h = nnnXY(7, rng);
    for (const auto &p : h.pairs()) {
        EXPECT_GT(p.xx, 0.0);
        EXPECT_GT(p.yy, 0.0);
        EXPECT_EQ(p.zz, 0.0);
    }
}

TEST(Models, AddPairFoldsDuplicates)
{
    TwoLocalHamiltonian h(4);
    h.addPair(0, 1, 0.1, 0.0, 0.0);
    h.addPair(1, 0, 0.0, 0.2, 0.0);
    EXPECT_EQ(h.pairs().size(), 1u);
    EXPECT_NEAR(h.pairs()[0].xx, 0.1, 1e-12);
    EXPECT_NEAR(h.pairs()[0].yy, 0.2, 1e-12);
}

TEST(Models, InteractionGraph)
{
    std::mt19937_64 rng(10);
    auto h = nnnIsing(6, rng);
    Graph g = h.interactionGraph();
    EXPECT_EQ(g.numEdges(), 9);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_FALSE(g.hasEdge(0, 3));
}

TEST(Trotter, StepStructure)
{
    std::mt19937_64 rng(11);
    auto h = nnnIsing(6, rng);
    auto c = trotterStep(h, 0.5);
    EXPECT_EQ(c.twoQubitCount(), 9);
    EXPECT_EQ(c.size() - c.twoQubitCount(), 6);  // one Rx per qubit
    // Interact coefficients scale with t.
    EXPECT_NEAR(c.op(0).azz, h.pairs()[0].zz * 0.5, 1e-12);
}

TEST(Trotter, MultiStepReversesEvenSteps)
{
    std::mt19937_64 rng(12);
    auto h = nnnXY(5, rng);
    auto c1 = trotterStep(h, 1.0 / 3.0);
    auto c = trotterCircuit(h, 1.0, 3, true);
    EXPECT_EQ(c.size(), 3 * c1.size());
    // Step 2's first 2q op equals step 1's last 2q op.
    int m = c1.twoQubitCount();
    std::vector<const tqan::qcir::Op *> twoq;
    for (const auto &o : c.ops())
        if (o.isTwoQubit())
            twoq.push_back(&o);
    EXPECT_EQ(twoq[m]->q0, twoq[m - 1]->q0);
    EXPECT_EQ(twoq[m]->q1, twoq[m - 1]->q1);
}

TEST(Trotter, RejectsBadStepCount)
{
    std::mt19937_64 rng(13);
    auto h = nnnIsing(4, rng);
    EXPECT_THROW(trotterCircuit(h, 1.0, 0), std::invalid_argument);
}

TEST(Qaoa, FixedAnglesTable)
{
    EXPECT_EQ(qaoaFixedAngles(1).size(), 1u);
    EXPECT_EQ(qaoaFixedAngles(2).size(), 2u);
    EXPECT_EQ(qaoaFixedAngles(3).size(), 3u);
    EXPECT_NEAR(qaoaFixedAngles(1)[0].beta, M_PI / 8.0, 1e-12);
    EXPECT_THROW(qaoaFixedAngles(4), std::invalid_argument);
}

TEST(Qaoa, CutAndCost)
{
    // Square C4: maxcut = 4, Cmin = 4 - 2*4 = -4.
    Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    EXPECT_EQ(cutValue(g, 0b0101), 4);
    EXPECT_EQ(maxCut(g), 4);
    EXPECT_EQ(costOfAssignment(g, 0b0101), -4);
    EXPECT_EQ(costOfAssignment(g, 0b0000), 4);
}

TEST(Qaoa, MaxCutK4)
{
    Graph g(4);
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j)
            g.addEdge(i, j);
    EXPECT_EQ(maxCut(g), 4);  // balanced 2-2 split
}

TEST(Qaoa, LayerHamiltonianMatchesGraph)
{
    std::mt19937_64 rng(14);
    Graph g = tqan::graph::randomRegularGraph(8, 3, rng);
    auto h = qaoaLayerHamiltonian(g, {0.6, 0.4});
    EXPECT_EQ(static_cast<int>(h.pairs().size()), g.numEdges());
    EXPECT_EQ(static_cast<int>(h.fields().size()), 8);
    for (const auto &p : h.pairs())
        EXPECT_NEAR(p.zz, 0.3, 1e-12);  // gamma/2 convention
}

TEST(Qaoa, StateCircuitShape)
{
    Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    auto angles = qaoaFixedAngles(2);
    auto c = qaoaStateCircuit(g, angles);
    // 4 H + 2 * (4 ZZ + 4 Rx).
    EXPECT_EQ(c.size(), 4 + 2 * (4 + 4));
    EXPECT_EQ(c.twoQubitCount(), 8);
}
