/**
 * @file
 * Tests for the Hamiltonian text format and the extended Trotter
 * constructions (second-order, randomized).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ham/models.h"
#include "ham/parser.h"
#include "ham/trotter.h"
#include "sim/statevector.h"

using namespace tqan;
using namespace tqan::ham;

TEST(Parser, RoundTrip)
{
    std::mt19937_64 rng(131);
    auto h = nnnHeisenberg(8, rng);
    h.addField(3, Axis::Z, -0.25);
    auto h2 = parseHamiltonian(formatHamiltonian(h));
    ASSERT_EQ(h2.numQubits(), 8);
    ASSERT_EQ(h2.pairs().size(), h.pairs().size());
    for (size_t i = 0; i < h.pairs().size(); ++i) {
        EXPECT_EQ(h2.pairs()[i].u, h.pairs()[i].u);
        EXPECT_NEAR(h2.pairs()[i].xx, h.pairs()[i].xx, 1e-9);
        EXPECT_NEAR(h2.pairs()[i].zz, h.pairs()[i].zz, 1e-9);
    }
    ASSERT_EQ(h2.fields().size(), h.fields().size());
}

TEST(Parser, AllKeywordsAndComments)
{
    auto h = parseHamiltonian("# comment\n"
                              "qubits 4\n"
                              "xx 0 1 0.5   # trailing comment\n"
                              "yy 0 1 0.25\n"
                              "zz 1 2 0.75\n"
                              "pair 2 3 0.1 0.2 0.3\n"
                              "\n"
                              "x 0 0.4\n"
                              "y 1 0.5\n"
                              "z 2 0.6\n");
    EXPECT_EQ(h.numQubits(), 4);
    ASSERT_EQ(h.pairs().size(), 3u);  // (0,1) folded
    EXPECT_NEAR(h.pairs()[0].xx, 0.5, 1e-12);
    EXPECT_NEAR(h.pairs()[0].yy, 0.25, 1e-12);
    EXPECT_EQ(h.fields().size(), 3u);
    EXPECT_EQ(h.fields()[1].axis, Axis::Y);
}

TEST(Parser, Failures)
{
    EXPECT_THROW(parseHamiltonian("xx 0 1 0.5\n"),
                 std::runtime_error);  // missing qubits line
    EXPECT_THROW(parseHamiltonian("qubits 2\nxx 0 5 0.5\n"),
                 std::runtime_error);  // out of range
    EXPECT_THROW(parseHamiltonian("qubits 2\nfrob 0 1 0.5\n"),
                 std::runtime_error);  // unknown keyword
    EXPECT_THROW(parseHamiltonian("qubits 2\nxx 0 1\n"),
                 std::runtime_error);  // missing coefficient
    EXPECT_THROW(parseHamiltonian("qubits 0\n"),
                 std::runtime_error);  // bad count
    EXPECT_THROW(parseHamiltonian("qubits 2\nqubits 3\n"),
                 std::runtime_error);  // duplicate
}

TEST(TrotterExt, SecondOrderStructure)
{
    std::mt19937_64 rng(132);
    auto h = nnnHeisenberg(6, rng);
    auto c1 = trotterStep(h, 0.5);
    auto c2 = secondOrderTrotterCircuit(h, 1.0, 1);
    // One second-order step = forward + backward half-steps.
    EXPECT_EQ(c2.size(), 2 * c1.size());
    // Palindrome: op k equals op (size-1-k) on the same qubits.
    int sz = c2.size();
    for (int k = 0; k < sz / 2; ++k) {
        EXPECT_EQ(c2.op(k).q0, c2.op(sz - 1 - k).q0);
        EXPECT_EQ(c2.op(k).q1, c2.op(sz - 1 - k).q1);
    }
}

TEST(TrotterExt, SecondOrderConvergesFaster)
{
    // Compare |<psi_exact|psi_trotter>| for first vs second order on
    // a small non-commuting model at equal step counts.  The exact
    // state is approximated by a very fine first-order formula.
    std::mt19937_64 rng(133);
    auto h = nnnHeisenberg(4, rng);
    const double t = 0.6;

    auto run = [&](const qcir::Circuit &c) {
        sim::Statevector psi(4);
        psi.applyPauli(0, 'X');  // some nontrivial initial state
        psi.applyCircuit(c);
        return psi;
    };
    sim::Statevector exact =
        run(trotterCircuit(h, t, 512, false));
    sim::Statevector first = run(trotterCircuit(h, t, 6, false));
    sim::Statevector second =
        run(secondOrderTrotterCircuit(h, t, 6));

    double f1 = first.fidelityWith(exact);
    double f2 = second.fidelityWith(exact);
    EXPECT_GT(f2, f1);
    EXPECT_GT(f2, 0.9);
}

TEST(TrotterExt, RandomizedPreservesTermMultiset)
{
    std::mt19937_64 rng(134);
    auto h = nnnXY(6, rng);
    auto c = randomizedTrotterCircuit(h, 1.0, 3, rng);
    auto ref = trotterStep(h, 1.0 / 3.0);
    EXPECT_EQ(c.size(), 3 * ref.size());
    // Each step contains every term exactly once: count 2q ops.
    EXPECT_EQ(c.twoQubitCount(), 3 * ref.twoQubitCount());
}

TEST(TrotterExt, RandomizedOrderDiffersAcrossSteps)
{
    std::mt19937_64 rng(135);
    auto h = nnnHeisenberg(8, rng);
    auto c = randomizedTrotterCircuit(h, 1.0, 2, rng);
    int per = c.size() / 2;
    bool any_diff = false;
    for (int k = 0; k < per && !any_diff; ++k) {
        const auto &a = c.op(k);
        const auto &b = c.op(per + k);
        if (a.q0 != b.q0 || a.q1 != b.q1)
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}
