/**
 * @file
 * Remaining-surface coverage: stringification, accessor edges, op
 * payload errors, and scheduler equivalence on the NoMap path.
 */

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "device/devices.h"
#include "graph/coloring.h"
#include "ham/models.h"
#include "qap/placement.h"
#include "ham/trotter.h"
#include "qcir/circuit.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;
using qcir::OpKind;

TEST(OpStr, NamesAndParameters)
{
    EXPECT_EQ(qcir::opKindName(OpKind::DressedSwap), "DressedSwap");
    EXPECT_EQ(qcir::opKindName(OpKind::Syc), "Syc");

    std::string s = Op::interact(0, 2, 0.1, 0.2, 0.3).str();
    EXPECT_NE(s.find("Interact"), std::string::npos);
    EXPECT_NE(s.find("q0"), std::string::npos);
    EXPECT_NE(s.find("q2"), std::string::npos);
    EXPECT_NE(s.find("zz=0.3"), std::string::npos);

    std::string r = Op::rx(1, 0.5).str();
    EXPECT_NE(r.find("Rx"), std::string::npos);
}

TEST(CircuitStr, ListsOps)
{
    Circuit c(2);
    c.add(Op::swap(0, 1));
    std::string s = c.str();
    EXPECT_NE(s.find("2 qubits"), std::string::npos);
    EXPECT_NE(s.find("Swap"), std::string::npos);
}

TEST(OpPayload, MissingMatrixThrows)
{
    Op o;
    o.kind = OpKind::U2q;
    o.q0 = 0;
    o.q1 = 1;
    EXPECT_THROW(o.unitary4(), std::logic_error);
    Op p;
    p.kind = OpKind::U1q;
    p.q0 = 0;
    EXPECT_THROW(p.unitary2(), std::logic_error);
    // Cross-arity calls throw too.
    EXPECT_THROW(Op::rx(0, 0.1).unitary4(), std::logic_error);
    EXPECT_THROW(Op::swap(0, 1).unitary2(), std::logic_error);
}

TEST(CircuitAppend, SizeMismatchThrows)
{
    Circuit a(3), b(4);
    EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(NoMapScheduler, MatchesColoringDepthBound)
{
    // The NoMap schedule's 2q depth equals the greedy coloring's
    // color count of the conflict graph.
    std::mt19937_64 rng(201);
    auto h = ham::nnnHeisenberg(12, rng);
    auto step = ham::trotterStep(h, 1.0);
    auto s = core::scheduleNoMap(step);

    std::vector<int> twoq;
    for (int i = 0; i < step.size(); ++i)
        if (step.op(i).isTwoQubit())
            twoq.push_back(i);
    graph::Graph conflict(static_cast<int>(twoq.size()));
    for (size_t a = 0; a < twoq.size(); ++a)
        for (size_t b = a + 1; b < twoq.size(); ++b) {
            const auto &oa = step.op(twoq[a]);
            const auto &ob = step.op(twoq[b]);
            if (oa.touches(ob.q0) || oa.touches(ob.q1))
                conflict.addEdge(static_cast<int>(a),
                                 static_cast<int>(b));
        }
    auto color = graph::greedyColoring(conflict);
    EXPECT_EQ(s.twoQubitDepth(), graph::numColors(color));
}

TEST(ScheduleValidator, CatchesCorruption)
{
    // scheduleIsValid must reject a tampered schedule.
    std::mt19937_64 rng(202);
    auto h = ham::nnnIsing(6, rng);
    auto step = ham::trotterStep(h, 1.0);
    auto s = core::scheduleNoMap(step);
    EXPECT_TRUE(core::scheduleIsValid(
        step, device::allToAll(6), s));

    // Drop one op: multiset mismatch.
    core::ScheduleResult broken = s;
    broken.deviceCircuit = qcir::Circuit(6);
    for (int i = 0; i + 1 < s.deviceCircuit.size(); ++i)
        broken.deviceCircuit.add(s.deviceCircuit.op(i));
    EXPECT_FALSE(core::scheduleIsValid(
        step, device::allToAll(6), broken));

    // Tamper with a coefficient: payload mismatch.
    core::ScheduleResult tampered = s;
    for (auto &o : tampered.deviceCircuit.ops()) {
        if (o.kind == qcir::OpKind::Interact) {
            o.azz += 0.5;
            break;
        }
    }
    EXPECT_FALSE(core::scheduleIsValid(
        step, device::allToAll(6), tampered));
}

TEST(RoutingValidator, CatchesCorruption)
{
    std::mt19937_64 rng(203);
    auto h = ham::nnnIsing(6, rng);
    auto step = ham::trotterStep(h, 1.0);
    device::Topology topo = device::grid(2, 3);
    auto place = qap::identityPlacement(6);
    auto r = core::routePermutationAware(step, place, topo, rng);
    ASSERT_TRUE(core::routingIsValid(step, topo, r));

    // Corrupt the map chain.
    auto broken = r;
    if (!broken.maps.empty() && broken.maps.back().size() >= 2) {
        std::swap(broken.maps.back()[0], broken.maps.back()[1]);
        if (!r.swaps.empty()) {
            EXPECT_FALSE(core::routingIsValid(step, topo, broken));
        }
    }

    // Drop a routed op.
    auto dropped = r;
    for (auto &bucket : dropped.nnOps) {
        if (!bucket.empty()) {
            bucket.pop_back();
            break;
        }
    }
    EXPECT_FALSE(core::routingIsValid(step, topo, dropped));
}
