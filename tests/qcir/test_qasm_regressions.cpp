/**
 * @file
 * Parser-hardening regression tests: edge cases surfaced by running
 * a 200k-input mutation fuzz of parseQasm under ASan/UBSan (every
 * rejection must be a line-numbered std::invalid_argument, never a
 * crash or a silent mis-parse) plus the statement classes the
 * fuzzing campaign showed produced misleading errors.
 */

#include <gtest/gtest.h>

#include "qcir/qasm.h"

using namespace tqan;
using qcir::parseQasm;

namespace {

/** Expect invalid_argument whose message contains every needle. */
void
expectRejects(const std::string &src,
              std::initializer_list<const char *> needles)
{
    try {
        parseQasm(src);
        FAIL() << "accepted: " << src;
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        for (const char *n : needles)
            EXPECT_NE(msg.find(n), std::string::npos)
                << "message '" << msg << "' lacks '" << n << "'";
    }
}

} // namespace

TEST(QasmRegression, EmptyPrograms)
{
    expectRejects("", {"empty input"});
    expectRejects("   \n\t\n", {"empty input"});
    expectRejects("// only a comment\n", {"empty input"});
}

TEST(QasmRegression, DuplicateRegisterDeclaration)
{
    expectRejects("OPENQASM 2.0;\nqreg q[4];\nqreg q[4];\n",
                  {"line 3", "duplicate register"});
    // Registers under any other name are rejected up front.
    expectRejects("OPENQASM 2.0;\nqreg r[4];\n",
                  {"line 2", "expected qreg q[N]"});
}

TEST(QasmRegression, OutOfRangeQubitIndices)
{
    expectRejects("OPENQASM 2.0;\nqreg q[4];\nrx(0.5) q[4];\n",
                  {"line 3", "out of range"});
    expectRejects("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[-1];\n",
                  {"line 3"});
    expectRejects(
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[99999999999];\n",
        {"line 3"});
}

TEST(QasmRegression, ImplausibleQregSize)
{
    expectRejects("OPENQASM 2.0;\nqreg q[2000000000];\n",
                  {"line 2", "implausible qreg size"});
    expectRejects("OPENQASM 2.0;\nqreg q[0];\n", {"bad qreg size"});
    expectRejects("OPENQASM 2.0;\nqreg q[-3];\n",
                  {"bad qreg size"});
    // The largest real device still parses.
    EXPECT_EQ(parseQasm("OPENQASM 2.0;\nqreg q[65];\n").numQubits(),
              65);
}

TEST(QasmRegression, UnsupportedStatementClasses)
{
    const char *head = "OPENQASM 2.0;\nqreg q[2];\n";
    expectRejects(std::string(head) + "creg c[2];\n",
                  {"line 3", "unsupported statement"});
    expectRejects(std::string(head) + "measure q[0] -> c[0];\n",
                  {"line 3", "unsupported statement"});
    expectRejects(std::string(head) + "barrier q;\n",
                  {"unsupported statement"});
    expectRejects(std::string(head) + "reset q[0];\n",
                  {"unsupported statement"});
    expectRejects(std::string(head) + "if (c == 1) rx(0.1) q[0];\n",
                  {"unsupported statement"});
}

TEST(QasmRegression, TruncationsAndMalformedStructure)
{
    expectRejects("OPENQASM 2.0;\nqreg q[2];\nrx(0.5) q[0]",
                  {"missing ';'"});
    expectRejects("OPENQASM 2.0;\nqreg q[2];\ngate foo a { rx(1) a;",
                  {"unterminated gate body"});
    expectRejects("OPENQASM 2.0;\nqreg q[2];\n}\n",
                  {"unmatched '}'"});
    expectRejects("OPENQASM 2.0;\nrx(0.5) q[0];\n",
                  {"before qreg"});
}

TEST(QasmRegression, GeneratorFoundMutations)
{
    // Shapes the mutation fuzz produced frequently: every one must
    // come back as a clean line-numbered rejection.
    expectRejects("OPENQASM 2.0;\nqreg q[4];\nrx(0.5 q[0];\n", {});
    expectRejects("OPENQASM 2.0;\nqreg q[4];\nrx() q[0];\n",
                  {"empty argument"});
    expectRejects("OPENQASM 2.0;\nqreg q[4];\ncx q[0],,q[1];\n",
                  {"empty argument"});
    expectRejects("OPENQASM 2.0;\nqreg q[4];\ncx q[0] q[1];\n", {});
    expectRejects("OPENQASM 2.0;\nqreg q[4];\nxc q[0],q[1];\n",
                  {"unknown gate"});
    expectRejects("OPENQASM 2.0;\nqreg q[4];\ncx q[1],q[1];\n",
                  {"distinct qubits"});
    expectRejects("OPENQASM 2.0;\nqreg q[4];\nrx(abc) q[0];\n",
                  {"unparsable angle"});
    expectRejects("OPENQASM 2.0;\nqreg q4];\n", {});
    expectRejects("OPENQASM 2;\nqreg q[4];\n", {"header"});
}
