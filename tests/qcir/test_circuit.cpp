/**
 * @file
 * Unit tests for the circuit IR: ops, circuits, metrics, DAG.
 */

#include <gtest/gtest.h>

#include "qcir/circuit.h"
#include "qcir/dag.h"

using namespace tqan::qcir;
using tqan::linalg::Mat4;
using tqan::linalg::phaseDistance;

TEST(Op, FactoriesValidate)
{
    EXPECT_THROW(Op::interact(1, 1, 0, 0, 0.5), std::invalid_argument);
    EXPECT_THROW(Op::swap(2, 2), std::invalid_argument);
    EXPECT_THROW(Op::cnot(0, 0), std::invalid_argument);
}

TEST(Op, DressedSwapUnitaryIsProduct)
{
    Op d = Op::dressedSwap(0, 1, 0.2, 0.3, 0.4);
    Mat4 expect = tqan::linalg::swapGate() *
                  tqan::linalg::expXxYyZz(0.2, 0.3, 0.4);
    EXPECT_LT(d.unitary4().distance(expect), 1e-12);
    // Order does not matter (SWAP commutes with the interaction).
    Mat4 other = tqan::linalg::expXxYyZz(0.2, 0.3, 0.4) *
                 tqan::linalg::swapGate();
    EXPECT_LT(d.unitary4().distance(other), 1e-12);
}

TEST(Op, RotationUnitaries)
{
    EXPECT_LT(Op::rx(0, 0.7).unitary2().distance(
                  tqan::linalg::rx(0.7)),
              1e-12);
    EXPECT_LT(Op::rz(3, -1.2).unitary2().distance(
                  tqan::linalg::rz(-1.2)),
              1e-12);
}

TEST(Circuit, AddValidatesRange)
{
    Circuit c(3);
    EXPECT_NO_THROW(c.add(Op::interact(0, 2, 0, 0, 1.0)));
    EXPECT_THROW(c.add(Op::interact(0, 3, 0, 0, 1.0)),
                 std::out_of_range);
    EXPECT_THROW(c.add(Op::rx(-1, 0.5)), std::out_of_range);
}

TEST(Circuit, CountsAndDepth)
{
    Circuit c(4);
    c.add(Op::interact(0, 1, 0, 0, 0.5));
    c.add(Op::interact(2, 3, 0, 0, 0.5));
    c.add(Op::interact(1, 2, 0, 0, 0.5));
    c.add(Op::rx(0, 0.1));
    EXPECT_EQ(c.twoQubitCount(), 3);
    EXPECT_EQ(c.countKind(OpKind::Interact), 3);
    EXPECT_EQ(c.twoQubitDepth(), 2);  // (0,1)//(2,3) then (1,2)
    EXPECT_EQ(c.depth(), 2);  // Rx on q0 fits next to (1,2)
}

TEST(Circuit, ReversedTwoQubitOrder)
{
    Circuit c(3);
    c.add(Op::interact(0, 1, 0, 0, 0.1));
    c.add(Op::rx(2, 0.5));
    c.add(Op::interact(1, 2, 0, 0, 0.2));
    Circuit r = c.reversedTwoQubitOrder();
    ASSERT_EQ(r.size(), 3);
    EXPECT_EQ(r.op(0).q1, 2);  // (1,2) first now
    EXPECT_EQ(r.op(1).kind, OpKind::Rx);
    EXPECT_EQ(r.op(2).q1, 1);
}

TEST(Circuit, UnifySamePairInteractions)
{
    Circuit c(3);
    c.add(Op::interact(0, 1, 0.1, 0.0, 0.0));
    c.add(Op::interact(1, 2, 0.0, 0.0, 0.3));
    c.add(Op::interact(1, 0, 0.0, 0.2, 0.0));  // same pair, flipped
    Circuit u = unifySamePairInteractions(c);
    EXPECT_EQ(u.twoQubitCount(), 2);
    const Op &merged = u.op(0);
    EXPECT_NEAR(merged.axx, 0.1, 1e-12);
    EXPECT_NEAR(merged.ayy, 0.2, 1e-12);
    EXPECT_NEAR(merged.azz, 0.0, 1e-12);

    // Unitary equivalence: merged == product of the two ops.
    Mat4 prod = Op::interact(0, 1, 0.0, 0.2, 0.0).unitary4() *
                Op::interact(0, 1, 0.1, 0.0, 0.0).unitary4();
    EXPECT_LT(phaseDistance(merged.unitary4(), prod), 1e-12);
}

TEST(GateDag, LinearChainDependencies)
{
    Circuit c(3);
    c.add(Op::interact(0, 1, 0, 0, 1.0));  // op 0
    c.add(Op::interact(1, 2, 0, 0, 1.0));  // op 1 (depends on 0)
    c.add(Op::interact(0, 1, 0, 0, 1.0));  // op 2 (depends on 0 and 1)
    GateDag dag(c);
    EXPECT_EQ(dag.roots(), std::vector<int>{0});
    EXPECT_EQ(dag.inDegree(1), 1);
    EXPECT_EQ(dag.inDegree(2), 2);
    auto order = dag.topoOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
}

TEST(GateDag, ParallelOpsHaveNoDependency)
{
    Circuit c(4);
    c.add(Op::interact(0, 1, 0, 0, 1.0));
    c.add(Op::interact(2, 3, 0, 0, 1.0));
    GateDag dag(c);
    EXPECT_EQ(dag.roots().size(), 2u);
}

TEST(GateDag, OneQubitOpsChainDependencies)
{
    Circuit c(2);
    c.add(Op::interact(0, 1, 0, 0, 1.0));
    c.add(Op::rx(0, 0.3));
    c.add(Op::interact(0, 1, 0, 0, 1.0));
    GateDag dag(c);
    // 2q -> rx -> 2q on qubit 0; second 2q also depends on first via
    // qubit 1.
    EXPECT_EQ(dag.inDegree(2), 2);
}
