/**
 * @file
 * Tests for the OpenQASM 2.0 exporter.
 */

#include <gtest/gtest.h>

#include "decomp/pass.h"
#include "qcir/qasm.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;

TEST(Qasm, BasicGates)
{
    Circuit c(3);
    c.add(Op::rx(0, 0.5));
    c.add(Op::cnot(0, 1));
    c.add(Op::cz(1, 2));
    std::string q = qcir::toQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(q.find("rx(0.5) q[0];"), std::string::npos);
    EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(q.find("cz q[1],q[2];"), std::string::npos);
    // No custom gate headers needed.
    EXPECT_EQ(q.find("gate iswap"), std::string::npos);
}

TEST(Qasm, U1qAsU3)
{
    Circuit c(1);
    c.add(Op::u1q(0, linalg::hadamard()));
    std::string q = qcir::toQasm(c);
    EXPECT_NE(q.find("u3("), std::string::npos);
}

TEST(Qasm, CustomGateHeaders)
{
    Circuit c(2);
    c.add(Op::iswap(0, 1));
    c.add(Op::syc(0, 1));
    std::string q = qcir::toQasm(c);
    EXPECT_NE(q.find("gate iswap"), std::string::npos);
    EXPECT_NE(q.find("gate syc"), std::string::npos);
    EXPECT_NE(q.find("iswap q[0],q[1];"), std::string::npos);
    EXPECT_NE(q.find("syc q[0],q[1];"), std::string::npos);
}

TEST(Qasm, RejectsApplicationLevelOps)
{
    Circuit c(2);
    c.add(Op::interact(0, 1, 0, 0, 0.3));
    EXPECT_THROW(qcir::toQasm(c), std::invalid_argument);

    Circuit s(2);
    s.add(Op::swap(0, 1));
    EXPECT_THROW(qcir::toQasm(s), std::invalid_argument);
}

TEST(Qasm, DecomposedCircuitExports)
{
    Circuit c(2);
    c.add(Op::dressedSwap(0, 1, 0.1, 0.2, 0.3));
    Circuit hw = decomp::decomposeToCnot(c);
    std::string q = qcir::toQasm(hw);
    EXPECT_NE(q.find("cx"), std::string::npos);
    // Line count sanity: header + qreg + one line per op.
    int lines = 0;
    for (char ch : q)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 3 + hw.size());
}
