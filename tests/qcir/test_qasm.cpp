/**
 * @file
 * Tests for the OpenQASM 2.0 exporter and parser: export shape,
 * export/import round trips, and malformed-input hardening (every
 * bad program must raise std::invalid_argument, never crash).
 */

#include <gtest/gtest.h>

#include "decomp/pass.h"
#include "linalg/matrix.h"
#include "qcir/qasm.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;

TEST(Qasm, BasicGates)
{
    Circuit c(3);
    c.add(Op::rx(0, 0.5));
    c.add(Op::cnot(0, 1));
    c.add(Op::cz(1, 2));
    std::string q = qcir::toQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(q.find("rx(0.5) q[0];"), std::string::npos);
    EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(q.find("cz q[1],q[2];"), std::string::npos);
    // No custom gate headers needed.
    EXPECT_EQ(q.find("gate iswap"), std::string::npos);
}

TEST(Qasm, U1qAsU3)
{
    Circuit c(1);
    c.add(Op::u1q(0, linalg::hadamard()));
    std::string q = qcir::toQasm(c);
    EXPECT_NE(q.find("u3("), std::string::npos);
}

TEST(Qasm, CustomGateHeaders)
{
    Circuit c(2);
    c.add(Op::iswap(0, 1));
    c.add(Op::syc(0, 1));
    std::string q = qcir::toQasm(c);
    EXPECT_NE(q.find("gate iswap"), std::string::npos);
    EXPECT_NE(q.find("gate syc"), std::string::npos);
    EXPECT_NE(q.find("iswap q[0],q[1];"), std::string::npos);
    EXPECT_NE(q.find("syc q[0],q[1];"), std::string::npos);
}

TEST(Qasm, RejectsApplicationLevelOps)
{
    Circuit c(2);
    c.add(Op::interact(0, 1, 0, 0, 0.3));
    EXPECT_THROW(qcir::toQasm(c), std::invalid_argument);

    Circuit s(2);
    s.add(Op::swap(0, 1));
    EXPECT_THROW(qcir::toQasm(s), std::invalid_argument);
}

TEST(Qasm, DecomposedCircuitExports)
{
    Circuit c(2);
    c.add(Op::dressedSwap(0, 1, 0.1, 0.2, 0.3));
    Circuit hw = decomp::decomposeToCnot(c);
    std::string q = qcir::toQasm(hw);
    EXPECT_NE(q.find("cx"), std::string::npos);
    // Line count sanity: header + qreg + one line per op.
    int lines = 0;
    for (char ch : q)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 3 + hw.size());
}

// ---------------------------------------------------------------
// Parser: round trips of the exporter's own output.
// ---------------------------------------------------------------

namespace {

/** Op-by-op equivalence: same kinds, qubits, and unitaries. */
void
expectSameCircuit(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("op " + std::to_string(i));
        EXPECT_EQ(a.op(i).kind, b.op(i).kind);
        EXPECT_EQ(a.op(i).q0, b.op(i).q0);
        EXPECT_EQ(a.op(i).q1, b.op(i).q1);
        if (a.op(i).isTwoQubit())
            EXPECT_LT(linalg::phaseDistance(a.op(i).unitary4(),
                                            b.op(i).unitary4()),
                      1e-9);
        else
            EXPECT_LT(linalg::phaseDistance(a.op(i).unitary2(),
                                            b.op(i).unitary2()),
                      1e-9);
    }
}

} // namespace

TEST(QasmParse, RoundTripBasicGates)
{
    Circuit c(3);
    c.add(Op::rx(0, 0.5));
    c.add(Op::ry(1, -1.25));
    c.add(Op::rz(2, 2.0));
    c.add(Op::cnot(0, 1));
    c.add(Op::cz(1, 2));
    Circuit back = qcir::parseQasm(qcir::toQasm(c));
    expectSameCircuit(c, back);
    // A second trip is textually stable.
    EXPECT_EQ(qcir::toQasm(back), qcir::toQasm(c));
}

TEST(QasmParse, RoundTripCustomGatesAndU3)
{
    Circuit c(2);
    c.add(Op::u1q(0, linalg::hadamard()));
    c.add(Op::iswap(0, 1));
    c.add(Op::syc(1, 0));
    Circuit back = qcir::parseQasm(qcir::toQasm(c));
    ASSERT_EQ(back.size(), 3);
    EXPECT_EQ(back.op(0).kind, qcir::OpKind::U1q);
    EXPECT_LT(linalg::phaseDistance(back.op(0).unitary2(),
                                    linalg::hadamard()),
              1e-9);
    EXPECT_EQ(back.op(1).kind, qcir::OpKind::ISwap);
    EXPECT_EQ(back.op(2).kind, qcir::OpKind::Syc);
    EXPECT_EQ(back.op(2).q0, 1);
    EXPECT_EQ(qcir::toQasm(back), qcir::toQasm(c));
}

TEST(QasmParse, RoundTripDecomposedCompilerOutput)
{
    Circuit c(3);
    c.add(Op::interact(0, 1, 0.3, 0.2, 0.1));
    c.add(Op::dressedSwap(1, 2, 0.1, 0.2, 0.3));
    Circuit hw = decomp::decomposeToCnot(c);
    Circuit back = qcir::parseQasm(qcir::toQasm(hw));
    expectSameCircuit(hw, back);
}

// ---------------------------------------------------------------
// Parser: malformed inputs die cleanly with std::invalid_argument.
// ---------------------------------------------------------------

TEST(QasmParse, TruncatedOrMissingHeader)
{
    EXPECT_THROW(qcir::parseQasm(""), std::invalid_argument);
    EXPECT_THROW(qcir::parseQasm("OPENQASM 2.0"),
                 std::invalid_argument);  // no ';'
    EXPECT_THROW(qcir::parseQasm("OPENQASM 3.0;\nqreg q[2];\n"),
                 std::invalid_argument);
    EXPECT_THROW(qcir::parseQasm("qreg q[2];\ncx q[0],q[1];\n"),
                 std::invalid_argument);
}

TEST(QasmParse, MissingQreg)
{
    EXPECT_THROW(qcir::parseQasm("OPENQASM 2.0;\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\ncx q[0],q[1];\n"),
        std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm(
            "OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\n"),
        std::invalid_argument);
    EXPECT_THROW(qcir::parseQasm("OPENQASM 2.0;\nqreg q[0];\n"),
                 std::invalid_argument);
}

TEST(QasmParse, UnknownGate)
{
    EXPECT_THROW(
        qcir::parseQasm(
            "OPENQASM 2.0;\nqreg q[2];\nfoo q[0],q[1];\n"),
        std::invalid_argument);
    // Gate known to qelib1 but outside the exporter's dialect.
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\nqreg q[2];\nccx "
                        "q[0],q[1],q[0];\n"),
        std::invalid_argument);
}

TEST(QasmParse, BadQubitIndex)
{
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\nqreg q[2];\nrx(0.5) "
                        "q[2];\n"),
        std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\nqreg q[2];\ncx "
                        "q[0],q[7];\n"),
        std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\nqreg q[2];\ncx "
                        "q[0],q[x];\n"),
        std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\nqreg q[2];\ncx "
                        "q[0],q[0];\n"),
        std::invalid_argument);
}

TEST(QasmParse, MalformedStatements)
{
    // Truncated tail (no ';'), bad arity, unparsable angle,
    // unterminated gate body.
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0]"),
        std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm(
            "OPENQASM 2.0;\nqreg q[2];\nrx(0.5) q[0],q[1];\n"),
        std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm(
            "OPENQASM 2.0;\nqreg q[2];\nrx(zz) q[0];\n"),
        std::invalid_argument);
    EXPECT_THROW(
        qcir::parseQasm("OPENQASM 2.0;\ngate foo a,b { cx a,b;\n"),
        std::invalid_argument);
}

TEST(QasmParse, AcceptsSpacesInsideParameterLists)
{
    // Valid OpenQASM 2.0 spacing the exporter doesn't emit itself.
    Circuit c = qcir::parseQasm(
        "OPENQASM 2.0;\nqreg q[2];\n"
        "u3( 0.1, 0.2, 0.3 ) q[0];\nrx (0.5) q[1];\n");
    ASSERT_EQ(c.size(), 2);
    EXPECT_EQ(c.op(0).kind, qcir::OpKind::U1q);
    EXPECT_EQ(c.op(1).kind, qcir::OpKind::Rx);
    EXPECT_DOUBLE_EQ(c.op(1).theta, 0.5);
}

TEST(QasmParse, ErrorMessagesCarryLineNumbers)
{
    try {
        qcir::parseQasm(
            "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[9];\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}
