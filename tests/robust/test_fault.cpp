/**
 * @file
 * Tests of the deterministic fault-injection layer: the TQAN_FAULT
 * grammar, the three actions, 1-based nth-hit counting, and the
 * strict-parse/loose-env conventions.  (The `exit` action is
 * exercised end to end by the CLI kill-and-resume CI step, not here —
 * _exit would take the test runner with it.)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "robust/fault.h"

using namespace tqan;
using namespace tqan::robust;

namespace {

/** Every test leaves the process disarmed, whatever happened. */
struct PlanGuard
{
    ~PlanGuard() { clearFaultPlan(); }
};

} // namespace

TEST(FaultPlan, ParsesClausesAndDefaultsToThrow)
{
    FaultPlan p = parseFaultPlan(
        "cache.append:3:exit,ckpt.read:1:fail,fuzz.shard:2");
    ASSERT_EQ(p.clauses.size(), 3u);
    EXPECT_EQ(p.clauses[0].site, "cache.append");
    EXPECT_EQ(p.clauses[0].nth, 3u);
    EXPECT_EQ(p.clauses[0].action, FaultAction::Exit);
    EXPECT_EQ(p.clauses[1].site, "ckpt.read");
    EXPECT_EQ(p.clauses[1].action, FaultAction::Fail);
    EXPECT_EQ(p.clauses[2].nth, 2u);
    EXPECT_EQ(p.clauses[2].action, FaultAction::Throw);
}

TEST(FaultPlan, RejectsMalformedClauses)
{
    // A typo must never silently disarm a plan.
    EXPECT_THROW(parseFaultPlan("nosuch.site:1"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultPlan("cache.append"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultPlan("cache.append:"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultPlan("cache.append:x"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultPlan("cache.append:1junk"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultPlan("cache.append:0"),
                 std::invalid_argument);  // nth is 1-based
    EXPECT_THROW(parseFaultPlan("cache.append:1:explode"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultPlan("cache.append:1,,ckpt.read:1"),
                 std::invalid_argument);
}

TEST(FaultPlan, SiteRegistryIsSortedAndCoversTheHotSpots)
{
    const auto &names = faultSiteNames();
    EXPECT_TRUE(
        std::is_sorted(names.begin(), names.end()));
    for (const char *site :
         {"batch.dispatch", "cache.append", "cache.lookup",
          "cache.open", "campaign.shard", "ckpt.append",
          "ckpt.fsync", "ckpt.read", "fuzz.shard",
          "service.dispatch", "service.reader", "service.writer",
          "sweep.shard"})
        EXPECT_NE(std::find(names.begin(), names.end(), site),
                  names.end())
            << site;
}

TEST(FaultPoint, DisarmedProbeNeverFires)
{
    PlanGuard guard;
    clearFaultPlan();
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultPoint("cache.lookup"));
}

TEST(FaultPoint, FailFiresExactlyOnceAtTheNthHit)
{
    PlanGuard guard;
    setFaultPlan(parseFaultPlan("cache.lookup:3:fail"));
    EXPECT_FALSE(faultPoint("cache.lookup"));  // hit 1
    EXPECT_FALSE(faultPoint("cache.lookup"));  // hit 2
    EXPECT_TRUE(faultPoint("cache.lookup"));   // hit 3: fires
    EXPECT_FALSE(faultPoint("cache.lookup"));  // hit 4: spent
    EXPECT_EQ(faultHits("cache.lookup"), 4u);
}

TEST(FaultPoint, ThrowRaisesInjectedFault)
{
    PlanGuard guard;
    setFaultPlan(parseFaultPlan("sweep.shard:1"));
    EXPECT_THROW(faultPoint("sweep.shard"), InjectedFault);
    // Other sites are untouched.
    EXPECT_FALSE(faultPoint("fuzz.shard"));
}

TEST(FaultPoint, SitesCountIndependently)
{
    PlanGuard guard;
    setFaultPlan(
        parseFaultPlan("cache.lookup:2:fail,ckpt.read:1:fail"));
    EXPECT_TRUE(faultPoint("ckpt.read"));
    EXPECT_FALSE(faultPoint("cache.lookup"));
    EXPECT_TRUE(faultPoint("cache.lookup"));
}

TEST(FaultPoint, InstallingAPlanResetsHitCounters)
{
    PlanGuard guard;
    setFaultPlan(parseFaultPlan("cache.lookup:1:fail"));
    EXPECT_TRUE(faultPoint("cache.lookup"));
    setFaultPlan(parseFaultPlan("cache.lookup:1:fail"));
    EXPECT_EQ(faultHits("cache.lookup"), 0u);
    EXPECT_TRUE(faultPoint("cache.lookup"));
}

TEST(FaultPlan, SummaryRoundTripsTheArmedPlan)
{
    PlanGuard guard;
    setFaultPlan(
        parseFaultPlan("ckpt.append:2:exit,cache.open:1:fail"));
    EXPECT_TRUE(faultPlanArmed());
    EXPECT_EQ(faultPlanSummary(),
              "ckpt.append:2:exit,cache.open:1:fail");
    clearFaultPlan();
    EXPECT_FALSE(faultPlanArmed());
    EXPECT_EQ(faultPlanSummary(), "");
}
