/**
 * @file
 * End-to-end kill-and-resume proofs on the real campaign consumers:
 * a sweep and a fuzz run interrupted mid-campaign (stopAfter — the
 * deterministic stand-in for SIGKILL; the durable shards are exactly
 * those journaled) must, after --resume, produce output
 * byte-identical to a never-interrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/batch.h"
#include "core/sweep.h"
#include "robust/fault.h"
#include "robust/runner.h"
#include "verify/fuzz.h"

using namespace tqan;

namespace {

struct Guard
{
    ~Guard()
    {
        robust::clearFaultPlan();
        robust::resetCampaignStop();
    }
};

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "tqan_resume_" + name + ".ckpt";
}

core::SweepSpec
smallSpec()
{
    std::istringstream in(
        "experiment = resume-test\n"
        "benchmarks = NNN_XY\n"
        "devices = line:6\n"
        "backends = 2qan\n"
        "sizes = 4 5\n"
        "instances = 2\n"
        "trials = 2\n");
    return core::parseSweepSpec(in);
}

std::string
csvOf(const std::vector<core::SweepRow> &rows)
{
    std::string out = core::sweepCsvHeader() + "\n";
    for (const auto &r : rows)
        out += core::toCsv(r) + "\n";
    return out;
}

verify::FuzzOptions
smallFuzz()
{
    verify::FuzzOptions opt;
    opt.iterations = 5;
    opt.seed = 11;
    opt.jobs = 2;
    opt.backends = {"2qan"};
    opt.scenario.maxQubits = 5;
    opt.scenario.maxDeviceQubits = 7;
    opt.check.equivalence.trials = 2;
    return opt;
}

} // namespace

TEST(CampaignResume, SweepResumesToByteIdenticalCsv)
{
    Guard guard;
    std::string path = tempPath("sweep");
    std::remove(path.c_str());
    core::SweepSpec spec = smallSpec();
    core::BatchCompiler bc({2});

    std::string straight = csvOf(core::runSweep(spec, bc));

    robust::CampaignOptions co;
    co.checkpoint = path;
    co.stopAfter = 2;
    core::SweepCampaignOutcome cut =
        core::runSweepCampaign(spec, bc, co);
    ASSERT_TRUE(cut.tallies.interrupted);
    ASSERT_GT(cut.tallies.skipped, 0u);

    robust::CampaignOptions rco;
    rco.checkpoint = path;
    rco.resume = true;
    core::SweepCampaignOutcome resumed =
        core::runSweepCampaign(spec, bc, rco);
    EXPECT_FALSE(resumed.tallies.interrupted);
    EXPECT_GE(resumed.tallies.restored, 2u);
    EXPECT_EQ(csvOf(resumed.rows), straight);
    std::remove(path.c_str());
}

TEST(CampaignResume, SweepResumeRejectsADifferentSpec)
{
    Guard guard;
    std::string path = tempPath("sweep_spec");
    std::remove(path.c_str());
    core::SweepSpec spec = smallSpec();
    core::BatchCompiler bc({1});

    robust::CampaignOptions co;
    co.checkpoint = path;
    co.stopAfter = 1;
    core::runSweepCampaign(spec, bc, co);

    // The config tag pins the whole spec: resuming with even one
    // knob changed must be an error, not quietly mixed results.
    core::SweepSpec other = spec;
    other.trials = 3;
    robust::CampaignOptions rco;
    rco.checkpoint = path;
    rco.resume = true;
    EXPECT_THROW(core::runSweepCampaign(other, bc, rco),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(CampaignResume, FuzzResumesToByteIdenticalSummary)
{
    Guard guard;
    std::string path = tempPath("fuzz");
    std::remove(path.c_str());
    verify::FuzzOptions opt = smallFuzz();

    verify::FuzzSummary straight = verify::runFuzz(opt);

    verify::FuzzOptions cutOpt = smallFuzz();
    cutOpt.campaign.checkpoint = path;
    cutOpt.campaign.stopAfter = 2;
    verify::FuzzSummary cut = verify::runFuzz(cutOpt);
    ASSERT_TRUE(cut.interrupted);
    ASSERT_GT(cut.skippedShards, 0u);

    verify::FuzzOptions resOpt = smallFuzz();
    resOpt.campaign.checkpoint = path;
    resOpt.campaign.resume = true;
    verify::FuzzSummary resumed = verify::runFuzz(resOpt);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_GE(resumed.restoredShards, 2u);
    EXPECT_EQ(verify::summaryLine(resumed),
              verify::summaryLine(straight));
    EXPECT_EQ(resumed.cases, straight.cases);
    std::remove(path.c_str());
}

TEST(CampaignResume, SweepShardFaultIsRetriedTransparently)
{
    Guard guard;
    core::SweepSpec spec = smallSpec();
    core::BatchCompiler bc({1});
    std::string straight = csvOf(core::runSweep(spec, bc));

    // One injected shard failure: the retry must reproduce the
    // identical row (shard functions are pure in the shard index).
    robust::setFaultPlan(robust::parseFaultPlan("sweep.shard:2"));
    robust::CampaignOptions co;
    co.retries = 2;
    co.backoff = 0.001;
    core::SweepCampaignOutcome out =
        core::runSweepCampaign(spec, bc, co);
    robust::clearFaultPlan();
    EXPECT_GE(out.tallies.retried, 1u);
    EXPECT_EQ(out.tallies.quarantined, 0u);
    EXPECT_EQ(csvOf(out.rows), straight);
}
