/**
 * @file
 * Tests of the append-only campaign checkpoint: round trip,
 * later-entry-wins, the verified load (torn tails and foreign
 * headers must never resurface as finished shards), and the
 * fault-injected crash-mid-append paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "robust/checkpoint.h"
#include "robust/fault.h"

using namespace tqan;
using robust::Checkpoint;

namespace {

struct PlanGuard
{
    ~PlanGuard() { robust::clearFaultPlan(); }
};

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "tqan_ckpt_" + name + ".bin";
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(Checkpoint, DisabledJournalNoops)
{
    Checkpoint c;
    EXPECT_FALSE(c.enabled());
    c.append(0, "payload");  // must not crash
    EXPECT_TRUE(c.entries().empty());
}

TEST(Checkpoint, RoundTripsAcrossReopen)
{
    std::string path = tempPath("roundtrip");
    std::remove(path.c_str());
    {
        Checkpoint c(path);
        ASSERT_TRUE(c.enabled());
        c.append(0, "shard-zero");
        c.append(7, "shard-seven");
        c.append(Checkpoint::kMetaShard, "tag v1");
    }
    Checkpoint again(path);
    EXPECT_EQ(again.loadInfo().loadedEntries, 3u);
    EXPECT_EQ(again.loadInfo().droppedBytes, 0u);
    ASSERT_EQ(again.entries().size(), 3u);
    EXPECT_EQ(again.entries().at(0), "shard-zero");
    EXPECT_EQ(again.entries().at(7), "shard-seven");
    EXPECT_EQ(again.entries().at(Checkpoint::kMetaShard), "tag v1");
    std::remove(path.c_str());
}

TEST(Checkpoint, LaterEntryForSameShardWins)
{
    std::string path = tempPath("laterwins");
    std::remove(path.c_str());
    {
        Checkpoint c(path);
        c.append(3, "first");
        c.append(3, "second");
    }
    Checkpoint again(path);
    EXPECT_EQ(again.entries().at(3), "second");
    std::remove(path.c_str());
}

TEST(Checkpoint, TornTailIsTruncatedNotReplayed)
{
    std::string path = tempPath("torn");
    std::remove(path.c_str());
    {
        Checkpoint c(path);
        c.append(0, "durable");
        c.append(1, "torn-away");
    }
    std::string bytes = fileBytes(path);
    writeBytes(path, bytes.substr(0, bytes.size() - 4));

    Checkpoint c(path);
    EXPECT_EQ(c.entries().size(), 1u);
    EXPECT_GT(c.loadInfo().droppedBytes, 0u);
    EXPECT_EQ(c.entries().count(1), 0u);
    // The file was truncated back to the verified prefix.
    Checkpoint again(path);
    EXPECT_EQ(again.loadInfo().droppedBytes, 0u);
    EXPECT_EQ(again.entries().size(), 1u);
    std::remove(path.c_str());
}

TEST(Checkpoint, CorruptPayloadFailsTheChecksum)
{
    std::string path = tempPath("corrupt");
    std::remove(path.c_str());
    {
        Checkpoint c(path);
        c.append(0, "payload");
    }
    std::string bytes = fileBytes(path);
    bytes[bytes.size() - 1] ^= 0x01;
    writeBytes(path, bytes);
    Checkpoint c(path);
    EXPECT_EQ(c.entries().size(), 0u);
    EXPECT_GT(c.loadInfo().droppedBytes, 0u);
    std::remove(path.c_str());
}

TEST(Checkpoint, ForeignHeaderRebuildsEmpty)
{
    std::string path = tempPath("foreign");
    writeBytes(path, "not a checkpoint journal");
    Checkpoint c(path);
    EXPECT_TRUE(c.loadInfo().rebuilt);
    EXPECT_TRUE(c.entries().empty());
    c.append(0, "fresh");
    Checkpoint again(path);
    EXPECT_FALSE(again.loadInfo().rebuilt);
    EXPECT_EQ(again.entries().at(0), "fresh");
    std::remove(path.c_str());
}

TEST(Checkpoint, ResetDropsEveryEntry)
{
    std::string path = tempPath("reset");
    std::remove(path.c_str());
    Checkpoint c(path);
    c.append(0, "a");
    c.append(1, "b");
    c.reset();
    EXPECT_TRUE(c.entries().empty());
    c.append(2, "c");
    Checkpoint again(path);
    EXPECT_EQ(again.entries().size(), 1u);
    EXPECT_EQ(again.entries().at(2), "c");
    std::remove(path.c_str());
}

TEST(Checkpoint, InjectedTornAppendIsDroppedOnReopen)
{
    PlanGuard guard;
    std::string path = tempPath("injected_torn");
    std::remove(path.c_str());
    Checkpoint c(path);
    c.append(0, "durable");

    // Crash mid-append: half the entry reaches the disk, the append
    // throws, and the shard must NOT be remembered as done.
    robust::setFaultPlan(
        robust::parseFaultPlan("ckpt.append:1:fail"));
    EXPECT_THROW(c.append(1, "torn"), std::runtime_error);
    robust::clearFaultPlan();
    EXPECT_EQ(c.entries().count(1), 0u);

    // The torn tail is verified away on the next open, and the
    // journal still accepts appends afterwards.
    Checkpoint again(path);
    EXPECT_EQ(again.entries().size(), 1u);
    EXPECT_GT(again.loadInfo().droppedBytes, 0u);
    again.append(1, "retried");
    Checkpoint third(path);
    EXPECT_EQ(third.entries().at(1), "retried");
    EXPECT_EQ(third.loadInfo().droppedBytes, 0u);
    std::remove(path.c_str());
}

TEST(Checkpoint, InjectedFsyncFaultIsNotAcknowledged)
{
    PlanGuard guard;
    std::string path = tempPath("fsync");
    std::remove(path.c_str());
    Checkpoint c(path);
    robust::setFaultPlan(robust::parseFaultPlan("ckpt.fsync:1"));
    EXPECT_THROW(c.append(0, "unsynced"), robust::InjectedFault);
    robust::clearFaultPlan();
    // Not durable => not remembered, even though the bytes were
    // written: the contract is fsync-before-acknowledge.
    EXPECT_EQ(c.entries().count(0), 0u);
    std::remove(path.c_str());
}

TEST(Checkpoint, TransientReadFaultIsRetriedAndCounted)
{
    PlanGuard guard;
    std::string path = tempPath("readretry");
    std::remove(path.c_str());
    {
        Checkpoint c(path);
        c.append(0, "payload");
    }
    robust::setFaultPlan(robust::parseFaultPlan("ckpt.read:1:fail"));
    Checkpoint c(path);
    robust::clearFaultPlan();
    EXPECT_GE(c.loadInfo().retries, 1u);
    EXPECT_EQ(c.entries().at(0), "payload");
    std::remove(path.c_str());
}
