/**
 * @file
 * Tests of the supervised campaign runner: worker-count invariance,
 * retry/quarantine/watchdog supervision, checkpointed interrupt +
 * resume byte-identity, and the forked-process worker mode.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "robust/fault.h"
#include "robust/runner.h"

using namespace tqan;
using namespace tqan::robust;

namespace {

struct Guard
{
    ~Guard()
    {
        clearFaultPlan();
        resetCampaignStop();
    }
};

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "tqan_campaign_" + name + ".ckpt";
}

/** The canonical deterministic shard function. */
std::string
payloadOf(std::uint64_t shard)
{
    return "payload-" + std::to_string(shard * 2654435761u);
}

ShardFn
simpleWork()
{
    return [](std::uint64_t shard, int) { return payloadOf(shard); };
}

std::string
joined(const std::vector<std::string> &payloads)
{
    std::string all;
    for (const auto &p : payloads)
        all += p + "\n";
    return all;
}

} // namespace

TEST(CampaignRunner, ZeroShardsCompletesEmpty)
{
    Guard guard;
    CampaignResult r = runCampaign(0, simpleWork(), {});
    EXPECT_TRUE(r.complete());
    EXPECT_TRUE(r.payloads.empty());
    EXPECT_EQ(r.completed, 0u);
    EXPECT_FALSE(r.interrupted);
}

TEST(CampaignRunner, SingleShardInline)
{
    Guard guard;
    CampaignResult r = runCampaign(1, simpleWork(), {});
    ASSERT_TRUE(r.complete());
    ASSERT_EQ(r.payloads.size(), 1u);
    EXPECT_EQ(r.payloads[0], payloadOf(0));
    EXPECT_EQ(r.shards[0].state, ShardState::Done);
}

TEST(CampaignRunner, AggregateIsIdenticalForAnyWorkerCount)
{
    Guard guard;
    CampaignOptions base;
    CampaignResult one = runCampaign(16, simpleWork(), base);
    ASSERT_TRUE(one.complete());
    for (int workers : {2, 5, 16}) {
        CampaignOptions co;
        co.workers = workers;
        CampaignResult r = runCampaign(16, simpleWork(), co);
        ASSERT_TRUE(r.complete()) << workers << " workers";
        EXPECT_EQ(joined(r.payloads), joined(one.payloads))
            << workers << " workers";
    }
}

TEST(CampaignRunner, FailingAttemptIsRetriedThenSucceeds)
{
    Guard guard;
    CampaignOptions co;
    co.retries = 2;
    co.backoff = 0.001;
    ShardFn flaky = [](std::uint64_t shard, int attempt) {
        if (shard == 2 && attempt == 0)
            throw std::runtime_error("transient shard failure");
        return payloadOf(shard);
    };
    CampaignResult r = runCampaign(4, flaky, co);
    ASSERT_TRUE(r.complete());
    EXPECT_GE(r.retried, 1u);
    EXPECT_EQ(r.payloads[2], payloadOf(2));
    EXPECT_EQ(r.shards[2].attempts, 2);
}

TEST(CampaignRunner, ExhaustedRetriesQuarantineButTheCampaignEnds)
{
    Guard guard;
    CampaignOptions co;
    co.retries = 1;
    co.backoff = 0.001;
    ShardFn cursed = [](std::uint64_t shard, int) -> std::string {
        if (shard == 1)
            throw std::runtime_error("always fails");
        return payloadOf(shard);
    };
    CampaignResult r = runCampaign(3, cursed, co);
    // Graceful degradation: the other shards resolved, the campaign
    // returned normally, and the quarantined shard is reported.
    EXPECT_FALSE(r.complete());
    EXPECT_FALSE(r.interrupted);
    EXPECT_EQ(r.quarantined, 1u);
    EXPECT_EQ(r.completed, 2u);
    EXPECT_EQ(r.shards[1].state, ShardState::Quarantined);
    EXPECT_NE(r.shards[1].error.find("always fails"),
              std::string::npos);
    EXPECT_EQ(r.payloads[1], "");
    EXPECT_EQ(r.payloads[0], payloadOf(0));
    EXPECT_EQ(r.payloads[2], payloadOf(2));
}

TEST(CampaignRunner, WatchdogRequeuesAHungShard)
{
    Guard guard;
    CampaignOptions co;
    co.workers = 2;
    co.shardDeadline = 0.15;
    co.retries = 2;
    co.backoff = 0.001;
    // First attempt of shard 0 hangs well past the deadline; the
    // watchdog must abandon it and the retry succeeds.  The sleep
    // outlives runCampaign as a detached worker, which is exactly
    // the design: everything it touches is shared-ptr-owned.
    ShardFn hanger = [](std::uint64_t shard, int attempt) {
        if (shard == 0 && attempt == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1200));
        return payloadOf(shard);
    };
    CampaignResult r = runCampaign(3, hanger, co);
    ASSERT_TRUE(r.complete());
    EXPECT_GE(r.retried, 1u);
    EXPECT_GE(r.shards[0].attempts, 2);
    EXPECT_EQ(r.payloads[0], payloadOf(0));
}

TEST(CampaignRunner, StopAfterInterruptsAndResumeIsByteIdentical)
{
    Guard guard;
    std::string path = tempPath("resume");
    std::remove(path.c_str());

    CampaignResult straight = runCampaign(8, simpleWork(), {});
    ASSERT_TRUE(straight.complete());

    CampaignOptions co;
    co.checkpoint = path;
    co.configTag = "runner-test v1";
    co.stopAfter = 3;
    CampaignResult cut = runCampaign(8, simpleWork(), co);
    EXPECT_TRUE(cut.interrupted);
    EXPECT_FALSE(cut.complete());
    EXPECT_GE(cut.completed, 3u);
    EXPECT_GT(cut.skipped, 0u);

    CampaignOptions rco;
    rco.checkpoint = path;
    rco.configTag = "runner-test v1";
    rco.resume = true;
    CampaignResult resumed = runCampaign(8, simpleWork(), rco);
    ASSERT_TRUE(resumed.complete());
    EXPECT_GE(resumed.restored, 3u);
    // The pinned property: interrupted + resumed == uninterrupted,
    // byte for byte.
    EXPECT_EQ(joined(resumed.payloads), joined(straight.payloads));
    std::remove(path.c_str());
}

TEST(CampaignRunner, ResumeRejectsAForeignCampaignTag)
{
    Guard guard;
    std::string path = tempPath("foreign_tag");
    std::remove(path.c_str());
    CampaignOptions co;
    co.checkpoint = path;
    co.configTag = "campaign A";
    ASSERT_TRUE(runCampaign(2, simpleWork(), co).complete());

    CampaignOptions other;
    other.checkpoint = path;
    other.configTag = "campaign B";
    other.resume = true;
    EXPECT_THROW(runCampaign(2, simpleWork(), other),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(CampaignRunner, FreshRunOverAnOldJournalStartsOver)
{
    Guard guard;
    std::string path = tempPath("fresh_reset");
    std::remove(path.c_str());
    CampaignOptions co;
    co.checkpoint = path;
    co.configTag = "tag";
    ASSERT_TRUE(runCampaign(3, simpleWork(), co).complete());
    // Same journal, resume NOT requested: recompute everything
    // rather than silently merging with the previous run.
    CampaignResult again = runCampaign(3, simpleWork(), co);
    ASSERT_TRUE(again.complete());
    EXPECT_EQ(again.restored, 0u);
    EXPECT_EQ(again.completed, 3u);
    std::remove(path.c_str());
}

TEST(CampaignRunner, InjectedShardFaultCostsOneAttempt)
{
    Guard guard;
    CampaignOptions co;
    co.retries = 2;
    co.backoff = 0.001;
    setFaultPlan(parseFaultPlan("campaign.shard:2"));
    CampaignResult r = runCampaign(4, simpleWork(), co);
    clearFaultPlan();
    ASSERT_TRUE(r.complete());
    EXPECT_GE(r.retried, 1u);
}

TEST(CampaignRunnerProcess, CrashingChildCostsARetryNotTheCampaign)
{
    Guard guard;
    CampaignOptions co;
    co.processes = 2;
    co.retries = 2;
    co.backoff = 0.001;
    // In process mode the shard fn runs in a forked child: _exit is
    // a real crash (no destructors, no flushing), exactly what an
    // OOM-kill or segfault leaves behind.
    ShardFn crashy = [](std::uint64_t shard, int attempt) {
        if (shard == 1 && attempt == 0)
            _exit(3);
        return payloadOf(shard);
    };
    CampaignResult r = runCampaign(3, crashy, co);
    ASSERT_TRUE(r.complete());
    EXPECT_GE(r.retried, 1u);
    EXPECT_EQ(r.payloads[1], payloadOf(1));
}

TEST(CampaignRunnerProcess, AlwaysCrashingChildIsQuarantined)
{
    Guard guard;
    CampaignOptions co;
    co.processes = 1;
    co.retries = 1;
    co.backoff = 0.001;
    ShardFn doomed = [](std::uint64_t shard, int) -> std::string {
        if (shard == 0)
            _exit(3);
        return payloadOf(shard);
    };
    CampaignResult r = runCampaign(2, doomed, co);
    EXPECT_EQ(r.quarantined, 1u);
    EXPECT_EQ(r.shards[0].state, ShardState::Quarantined);
    EXPECT_EQ(r.payloads[1], payloadOf(1));
    EXPECT_FALSE(r.interrupted);
}

TEST(CampaignRunnerProcess, HungChildIsKilledAndRequeued)
{
    Guard guard;
    CampaignOptions co;
    co.processes = 2;
    co.shardDeadline = 0.15;
    co.retries = 2;
    co.backoff = 0.001;
    ShardFn hanger = [](std::uint64_t shard, int attempt) {
        if (shard == 0 && attempt == 0)
            std::this_thread::sleep_for(std::chrono::seconds(30));
        return payloadOf(shard);
    };
    CampaignResult r = runCampaign(2, hanger, co);
    ASSERT_TRUE(r.complete());
    EXPECT_GE(r.shards[0].attempts, 2);
    EXPECT_EQ(r.payloads[0], payloadOf(0));
}

TEST(CampaignRunnerProcess, ResumeIsByteIdenticalAcrossModes)
{
    Guard guard;
    std::string path = tempPath("proc_resume");
    std::remove(path.c_str());

    CampaignResult straight = runCampaign(6, simpleWork(), {});

    CampaignOptions co;
    co.processes = 2;
    co.checkpoint = path;
    co.configTag = "proc v1";
    co.stopAfter = 2;
    CampaignResult cut = runCampaign(6, simpleWork(), co);
    EXPECT_TRUE(cut.interrupted);

    // Resume in THREAD mode: the journal doesn't care which mode
    // computed a shard, payloads are payloads.
    CampaignOptions rco;
    rco.workers = 3;
    rco.checkpoint = path;
    rco.configTag = "proc v1";
    rco.resume = true;
    CampaignResult resumed = runCampaign(6, simpleWork(), rco);
    ASSERT_TRUE(resumed.complete());
    EXPECT_EQ(joined(resumed.payloads), joined(straight.payloads));
    std::remove(path.c_str());
}
