/**
 * @file
 * Regression tests of the custom:N:edges topology-spec parser.
 * Edge tokens used to go through bare std::stoi prefix parses, so
 * "custom:4:0-1junk" built a 0-1 edge silently; every numeric field
 * is now digits-only or an error.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "testgen/random_topology.h"

using namespace tqan;

TEST(TopologySpec, RoundTripsACustomSpec)
{
    device::Topology t =
        testgen::topologyFromSpec("custom:4:0-1,1-2,2-3,0-3");
    EXPECT_EQ(t.numQubits(), 4);
    EXPECT_EQ(t.edges().size(), 4u);
    device::Topology again =
        testgen::topologyFromSpec(testgen::topologySpec(t));
    EXPECT_EQ(again.numQubits(), t.numQubits());
    EXPECT_EQ(again.edges(), t.edges());
}

TEST(TopologySpec, DelegatesNamedDevices)
{
    EXPECT_EQ(testgen::topologyFromSpec("line:5").numQubits(), 5);
}

TEST(TopologySpec, RejectsJunkTailedEdgeTokens)
{
    // The former silent-truncation bug: "0-1junk" parsed as 0-1.
    for (const char *bad :
         {"custom:4:0-1junk", "custom:4:junk0-1", "custom:4:0-1.5",
          "custom:4:0x1-2", "custom:4:0- 1", "custom:4: 0-1",
          "custom:4:+0-1", "custom:4:0-+1"}) {
        EXPECT_THROW(testgen::topologyFromSpec(bad),
                     std::invalid_argument)
            << "spec '" << bad << "' was accepted";
    }
}

TEST(TopologySpec, RejectsNegativeAndMalformedEdges)
{
    for (const char *bad :
         {"custom:4:-1-2", "custom:4:1--2", "custom:4:0",
          "custom:4:0-", "custom:4:-1"}) {
        EXPECT_THROW(testgen::topologyFromSpec(bad),
                     std::invalid_argument)
            << "spec '" << bad << "' was accepted";
    }
}

TEST(TopologySpec, RejectsOutOfRangeAndSelfEdges)
{
    EXPECT_THROW(testgen::topologyFromSpec("custom:4:0-4"),
                 std::invalid_argument);
    EXPECT_THROW(testgen::topologyFromSpec("custom:4:2-2"),
                 std::invalid_argument);
}

TEST(TopologySpec, RejectsBadQubitCounts)
{
    for (const char *bad :
         {"custom:0:", "custom:-3:", "custom:4junk:0-1",
          "custom:4.5:0-1", "custom::0-1", "custom:99999999:",
          "custom:4"}) {
        EXPECT_THROW(testgen::topologyFromSpec(bad),
                     std::invalid_argument)
            << "spec '" << bad << "' was accepted";
    }
}

TEST(TopologySpec, ErrorNamesTheOffendingToken)
{
    try {
        testgen::topologyFromSpec("custom:4:0-1,1-2junk");
        FAIL() << "junk-tailed edge token was accepted";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("1-2junk"),
                  std::string::npos)
            << e.what();
    }
}
