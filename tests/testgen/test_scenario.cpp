/**
 * @file
 * Distribution-sanity tests of the workload generator: determinism,
 * kind coverage (including every adversarial shape), topology
 * invariants (connectivity, degree bound, size window), coefficient
 * ranges, and spec round-tripping.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "testgen/scenario.h"

using namespace tqan;
using testgen::Scenario;
using testgen::ScenarioKind;

namespace {
constexpr int kDraws = 300;
}

TEST(ScenarioGen, DeterministicInSeed)
{
    for (std::uint64_t seed : {1, 17, 4242}) {
        Scenario a = testgen::randomScenario(seed);
        Scenario b = testgen::randomScenario(seed);
        EXPECT_EQ(testgen::toSpec(a), testgen::toSpec(b));
        EXPECT_EQ(a.name, b.name);
    }
}

TEST(ScenarioGen, EveryKindAppears)
{
    std::map<ScenarioKind, int> counts;
    for (int i = 0; i < kDraws; ++i)
        ++counts[testgen::randomScenario(i).kind];
    for (ScenarioKind k :
         {ScenarioKind::HeisenbergChain, ScenarioKind::IsingChain,
          ScenarioKind::XYChain, ScenarioKind::RandomGraphHam,
          ScenarioKind::Qaoa, ScenarioKind::DisconnectedHam,
          ScenarioKind::SingleQubitOnly, ScenarioKind::FullDevice})
        EXPECT_GT(counts[k], 0)
            << "kind " << testgen::scenarioKindName(k)
            << " never drawn in " << kDraws << " scenarios";
}

TEST(ScenarioGen, TopologyInvariants)
{
    testgen::ScenarioOptions opt;
    for (int i = 0; i < kDraws; ++i) {
        Scenario s = testgen::randomScenario(i, opt);
        const int n = s.hamiltonian->numQubits();
        const int dn = s.topo.numQubits();

        EXPECT_GE(n, opt.minQubits) << s.name;
        EXPECT_LE(n, opt.maxQubits) << s.name;
        EXPECT_GE(dn, n) << s.name;
        EXPECT_LE(dn, std::max(opt.maxDeviceQubits, n)) << s.name;
        EXPECT_TRUE(s.topo.coupling().isConnected()) << s.name;
        for (int q = 0; q < dn; ++q)
            EXPECT_LE(s.topo.coupling().degree(q),
                      opt.topology.maxDegree)
                << s.name;
        if (s.kind == ScenarioKind::FullDevice) {
            EXPECT_EQ(dn, n) << s.name;
        }
    }
}

TEST(ScenarioGen, CoefficientRangesAndStepShape)
{
    constexpr double kPi = 3.14159265358979323846;
    for (int i = 0; i < kDraws; ++i) {
        Scenario s = testgen::randomScenario(i);
        for (const auto &p : s.hamiltonian->pairs()) {
            for (double c : {p.xx, p.yy, p.zz}) {
                EXPECT_GE(c, 0.0) << s.name;
                EXPECT_LT(c, kPi) << s.name;
            }
            EXPECT_GT(std::abs(p.xx) + std::abs(p.yy) +
                          std::abs(p.zz),
                      0.0)
                << s.name << ": empty pair term";
        }
        EXPECT_GT(s.time, 0.0);
        EXPECT_LE(s.time, 1.0);
        // The step realizes exactly the Hamiltonian's terms.
        EXPECT_EQ(s.step->twoQubitCount(),
                  static_cast<int>(s.hamiltonian->pairs().size()))
            << s.name;
        if (s.kind == ScenarioKind::SingleQubitOnly) {
            EXPECT_EQ(s.step->twoQubitCount(), 0) << s.name;
        }
    }
}

TEST(ScenarioGen, AdversarialFractionRoughlyRespected)
{
    int adversarial = 0;
    for (int i = 0; i < kDraws; ++i) {
        ScenarioKind k = testgen::randomScenario(i).kind;
        if (k == ScenarioKind::DisconnectedHam ||
            k == ScenarioKind::SingleQubitOnly ||
            k == ScenarioKind::FullDevice)
            ++adversarial;
    }
    // Expected 25% +- a generous band (binomial, n = 300).
    EXPECT_GT(adversarial, kDraws / 8);
    EXPECT_LT(adversarial, kDraws / 2);
}

TEST(ScenarioGen, DisconnectedScenariosAreDisconnected)
{
    int seen = 0;
    for (int i = 0; i < kDraws && seen < 5; ++i) {
        Scenario s = testgen::randomScenario(i);
        if (s.kind != ScenarioKind::DisconnectedHam)
            continue;
        ++seen;
        graph::Graph ig = s.hamiltonian->interactionGraph();
        EXPECT_FALSE(ig.isConnected()) << s.name;
    }
    EXPECT_GT(seen, 0);
}

TEST(ScenarioGen, SpecRoundTrip)
{
    for (std::uint64_t seed : {3, 99, 1001}) {
        Scenario s = testgen::randomScenario(seed);
        Scenario r = testgen::scenarioFromSpec(testgen::toSpec(s));
        EXPECT_EQ(r.topo.edges(), s.topo.edges());
        EXPECT_EQ(r.hamiltonian->pairs().size(),
                  s.hamiltonian->pairs().size());
        EXPECT_EQ(r.hamiltonian->fields().size(),
                  s.hamiltonian->fields().size());
        for (size_t i = 0; i < s.hamiltonian->pairs().size(); ++i) {
            const auto &a = s.hamiltonian->pairs()[i];
            const auto &b = r.hamiltonian->pairs()[i];
            EXPECT_EQ(a.u, b.u);
            EXPECT_EQ(a.v, b.v);
            EXPECT_DOUBLE_EQ(a.xx, b.xx);
            EXPECT_DOUBLE_EQ(a.yy, b.yy);
            EXPECT_DOUBLE_EQ(a.zz, b.zz);
        }
    }
}

TEST(RandomTopology, SpecRoundTripAndNamedFallback)
{
    std::mt19937_64 rng(5);
    testgen::TopologyOptions opt;
    device::Topology t = testgen::randomConnectedTopology(rng, opt);
    device::Topology r =
        testgen::topologyFromSpec(testgen::topologySpec(t));
    EXPECT_EQ(r.numQubits(), t.numQubits());
    EXPECT_EQ(r.edges(), t.edges());

    // Non-custom specs fall through to deviceByName.
    EXPECT_EQ(testgen::topologyFromSpec("line:5").numQubits(), 5);
    EXPECT_THROW(testgen::topologyFromSpec("custom:bad"),
                 std::invalid_argument);
    EXPECT_THROW(testgen::topologyFromSpec("custom:3:0-9"),
                 std::invalid_argument);
}
