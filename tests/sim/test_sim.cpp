/**
 * @file
 * Tests for the statevector simulator, noise trajectories, ESP model
 * and QAOA evaluation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/random_graph.h"
#include "ham/qaoa.h"
#include "sim/noise.h"
#include "sim/qaoa_eval.h"
#include "sim/statevector.h"

using namespace tqan;
using namespace tqan::sim;
using tqan::qcir::Circuit;
using tqan::qcir::Op;

TEST(Statevector, InitialState)
{
    Statevector psi(3);
    EXPECT_NEAR(std::abs(psi.amplitude(0) - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(Statevector, BellState)
{
    Statevector psi(2);
    psi.apply1q(0, linalg::hadamard());
    psi.apply2q(0, 1, linalg::cnot(0, 1));
    EXPECT_NEAR(psi.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(psi.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(psi.probability(0b01), 0.0, 1e-12);
}

TEST(Statevector, TwoQubitFrameConvention)
{
    // apply2q(q0=1, q1=0, CNOT): control = qubit 1, target = qubit 0.
    Statevector psi(2);
    psi.apply1q(1, linalg::pauliX());  // |10>
    psi.apply2q(1, 0, linalg::cnot(0, 1));
    EXPECT_NEAR(psi.probability(0b11), 1.0, 1e-12);
}

TEST(Statevector, MatchesDenseProductOnThreeQubits)
{
    // Random circuit on 3 qubits vs. dense 8x8 accumulation.
    std::mt19937_64 rng(101);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);

    Circuit c(3);
    c.add(Op::rx(0, ang(rng)));
    c.add(Op::interact(0, 1, ang(rng), 0.0, ang(rng)));
    c.add(Op::ry(2, ang(rng)));
    c.add(Op::interact(1, 2, 0.0, ang(rng), 0.0));
    c.add(Op::swap(0, 2));
    c.add(Op::rz(1, ang(rng)));
    c.add(Op::interact(0, 2, 0.3, 0.4, 0.5));

    Statevector psi(3);
    psi.applyCircuit(c);

    // Dense reference.
    std::vector<linalg::Cx> ref(8, 0.0);
    ref[0] = 1.0;
    auto apply_dense = [&ref](const Op &o) {
        std::vector<linalg::Cx> out(8, 0.0);
        if (o.isTwoQubit()) {
            auto u = o.unitary4();
            for (int b = 0; b < 8; ++b) {
                int b0 = (b >> o.q0) & 1, b1 = (b >> o.q1) & 1;
                int in = (b1 << 1) | b0;
                for (int r = 0; r < 4; ++r) {
                    int nb = b;
                    nb &= ~(1 << o.q0);
                    nb &= ~(1 << o.q1);
                    nb |= (r & 1) << o.q0;
                    nb |= ((r >> 1) & 1) << o.q1;
                    out[nb] += u.at(r, in) * ref[b];
                }
            }
        } else {
            auto u = o.unitary2();
            for (int b = 0; b < 8; ++b) {
                int bit = (b >> o.q0) & 1;
                for (int r = 0; r < 2; ++r) {
                    int nb = (b & ~(1 << o.q0)) | (r << o.q0);
                    out[nb] += u.at(r, bit) * ref[b];
                }
            }
        }
        ref = out;
    };
    for (const auto &o : c.ops())
        apply_dense(o);

    for (int b = 0; b < 8; ++b)
        EXPECT_NEAR(std::abs(psi.amplitude(b) - ref[b]), 0.0, 1e-10);
}

TEST(Statevector, ExpectationZZ)
{
    graph::Graph g(2, {{0, 1}});
    Statevector psi(2);
    EXPECT_NEAR(psi.expectationZZ(g), 1.0, 1e-12);  // |00>: same side
    psi.applyPauli(0, 'X');                          // |01>
    EXPECT_NEAR(psi.expectationZZ(g), -1.0, 1e-12);
    psi.apply1q(1, linalg::hadamard());
    EXPECT_NEAR(psi.expectationZZ(g), 0.0, 1e-12);
}

TEST(Statevector, SamplingFollowsBorn)
{
    Statevector psi(1);
    psi.apply1q(0, linalg::hadamard());
    std::mt19937_64 rng(102);
    int ones = 0;
    for (int i = 0; i < 2000; ++i)
        ones += psi.sample(rng) & 1;
    EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(Noise, ZeroErrorIsExact)
{
    std::mt19937_64 rng(103);
    graph::Graph g = graph::randomRegularGraph(6, 3, rng);
    auto c = ham::qaoaStateCircuit(g, ham::qaoaFixedAngles(1));
    NoiseModel nm;
    nm.err1q = nm.err2q = 0.0;
    double noisy =
        noisyExpectationZZ(c, 6, g.edges(), nm, 3, rng);
    Statevector ref(6);
    ref.applyCircuit(c);
    EXPECT_NEAR(noisy, ref.expectationZZ(g), 1e-9);
}

TEST(Noise, ErrorsDegradeCost)
{
    std::mt19937_64 rng(104);
    graph::Graph g = graph::randomRegularGraph(8, 3, rng);
    auto c = ham::qaoaStateCircuit(g, ham::qaoaFixedAngles(1));
    int cmin = g.numEdges() - 2 * ham::maxCut(g);

    Statevector ref(8);
    ref.applyCircuit(c);
    double clean = ref.expectationZZ(g) / cmin;

    NoiseModel heavy;
    heavy.err2q = 0.15;
    heavy.err1q = 0.02;
    double noisy = noisyExpectationZZ(c, 8, g.edges(), heavy, 40,
                                      rng) /
                   cmin;
    EXPECT_LT(noisy, clean);
}

TEST(Esp, MonotonicInGateCount)
{
    NoiseModel nm = montrealNoise();
    CircuitCost small{10, 20, 5, 5, 8};
    CircuitCost big{100, 200, 50, 50, 8};
    EXPECT_GT(esp(small, nm), esp(big, nm));
    EXPECT_GT(esp(small, nm), 0.0);
    EXPECT_LT(esp(small, nm), 1.0);
}

TEST(Esp, TallyCountsCircuit)
{
    Circuit c(3);
    c.add(Op::cnot(0, 1));
    c.add(Op::rx(2, 0.3));
    c.add(Op::cnot(1, 2));
    auto cost = tallyCircuit(c, 3);
    EXPECT_EQ(cost.gates2q, 2);
    EXPECT_EQ(cost.gates1q, 1);
    EXPECT_EQ(cost.measuredQubits, 3);
}

TEST(QaoaEval, NoiselessRatioInRange)
{
    std::mt19937_64 rng(105);
    graph::Graph g = graph::randomRegularGraph(8, 3, rng);
    double r1 = noiselessRatio(g, ham::qaoaFixedAngles(1));
    EXPECT_GT(r1, 0.2);   // fixed angles are decent
    EXPECT_LT(r1, 1.0);
    // More layers should not hurt (fixed-angle tables improve).
    double r2 = noiselessRatio(g, ham::qaoaFixedAngles(2));
    EXPECT_GT(r2, r1 - 0.05);
}

TEST(QaoaEval, EspRatioBelowNoiseless)
{
    CircuitCost cost{60, 100, 30, 30, 10};
    NoiseModel nm = montrealNoise();
    EXPECT_LT(espRatio(0.7, cost, nm), 0.7);
    EXPECT_GT(espRatio(0.7, cost, nm), 0.0);
}

TEST(QaoaEval, CompactCircuit)
{
    Circuit c(10);
    c.add(Op::interact(7, 3, 0, 0, 0.5));
    c.add(Op::rx(9, 0.1));
    std::vector<int> map;
    Circuit out = compactCircuit(c, map);
    EXPECT_EQ(out.numQubits(), 3);
    EXPECT_EQ(map[7], 0);
    EXPECT_EQ(map[3], 1);
    EXPECT_EQ(map[9], 2);
    EXPECT_EQ(map[0], -1);
}
