/**
 * @file
 * Execution-engine guarantees: block-parallel kernels and reductions
 * are bit-identical for any worker count, shot-parallel trajectories
 * are bit-identical and reproducible per seed, the qubit ceiling and
 * allocation guard fire, and montrealNoise() carries the paper's
 * calibration.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/sweep.h"
#include "graph/random_graph.h"
#include "ham/qaoa.h"
#include "sim/engine.h"
#include "sim/esp.h"
#include "sim/noise.h"
#include "sim/qaoa_eval.h"
#include "sim/statevector.h"

using namespace tqan;
using namespace tqan::sim;
using tqan::qcir::Circuit;

namespace {

Circuit
qaoaCircuit(int n, int p, std::uint64_t seed, graph::Graph &gOut)
{
    std::mt19937_64 rng(seed);
    gOut = graph::randomRegularGraph(n, 3, rng);
    return ham::qaoaStateCircuit(gOut, ham::qaoaFixedAngles(p));
}

} // namespace

TEST(Engine, KernelsAndReductionsBitIdenticalAcrossJobs)
{
    // n = 16 gives several 2^14-sized blocks, so the 8-worker engine
    // really fans out; amplitudes and reduction values must still be
    // bit-equal to the serial run.
    graph::Graph g(1, {});
    Circuit c = qaoaCircuit(16, 2, 1234, g);

    Engine eng(8);
    Statevector serial(16);
    Statevector parallel(16, &eng);
    serial.applyCircuit(c);
    parallel.applyCircuit(c);

    for (std::uint64_t i = 0; i < serial.dim(); ++i)
        ASSERT_EQ(serial.amplitude(i), parallel.amplitude(i)) << i;

    EXPECT_EQ(serial.norm(), parallel.norm());
    EXPECT_EQ(serial.expectationZZ(g.edges()),
              parallel.expectationZZ(g.edges()));
    EXPECT_EQ(serial.fidelityWith(parallel),
              parallel.fidelityWith(serial));
}

TEST(Engine, TrajectoriesBitIdenticalAcrossJobs)
{
    graph::Graph g(1, {});
    Circuit c = qaoaCircuit(8, 1, 99, g);
    NoiseModel nm = montrealNoise();

    Engine eng8(8);
    Engine eng2(2);
    double serial = noisyExpectationZZ(c, 8, g.edges(), nm, 24,
                                       /*seed=*/7);
    double par8 =
        noisyExpectationZZ(c, 8, g.edges(), nm, 24, 7, &eng8);
    double par2 =
        noisyExpectationZZ(c, 8, g.edges(), nm, 24, 7, &eng2);
    EXPECT_EQ(serial, par8);
    EXPECT_EQ(serial, par2);
}

TEST(Engine, TrajectoriesReproduciblePerSeed)
{
    graph::Graph g(1, {});
    Circuit c = qaoaCircuit(6, 1, 17, g);
    NoiseModel nm = montrealNoise();
    nm.err2q = 0.2;  // make error locations load-bearing

    double a = noisyExpectationZZ(c, 6, g.edges(), nm, 16, 42);
    double b = noisyExpectationZZ(c, 6, g.edges(), nm, 16, 42);
    double other = noisyExpectationZZ(c, 6, g.edges(), nm, 16, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, other);
}

TEST(Engine, SeededTrajectoryRatioMatchesAcrossJobs)
{
    graph::Graph g(1, {});
    Circuit c = qaoaCircuit(6, 1, 5, g);
    int cmin = g.numEdges() - 2 * ham::maxCut(g);
    Engine eng(4);
    double serial = trajectoryRatio(c, g.edges(), cmin,
                                    montrealNoise(), 12,
                                    std::uint64_t(11));
    double par = trajectoryRatio(c, g.edges(), cmin,
                                 montrealNoise(), 12,
                                 std::uint64_t(11), &eng);
    EXPECT_EQ(serial, par);
}

TEST(Engine, SimBenchCaseDeterministicAcrossJobs)
{
    core::SimBenchCase traj{"t", 8, 1, 8, 0, false};
    EXPECT_EQ(core::runSimCase(traj, 0, 1),
              core::runSimCase(traj, 0, 4));

    // Noiseless case: the engine and the pre-engine reference
    // simulate the identical state.
    core::SimBenchCase state{"s", 8, 1, 0, 0, false};
    core::SimBenchCase stateRef{"s", 8, 1, 0, 0, true};
    EXPECT_EQ(core::runSimCase(state, 0, 1),
              core::runSimCase(state, 0, 4));
    EXPECT_NEAR(core::runSimCase(state, 0, 2),
                core::runSimCase(stateRef, 0, 1), 1e-10);
}

TEST(Engine, TrajectoryRejectsOversizedCircuit)
{
    // The GateStream path must guard circuit width like
    // applyCircuit does — no out-of-bounds pending-gate slots.
    Statevector psi(2);
    Circuit big(5);
    big.add(qcir::Op::rx(4, 0.3));
    std::mt19937_64 rng(1);
    EXPECT_THROW(
        runNoisyTrajectory(psi, big, montrealNoise(), rng),
        std::invalid_argument);
}

TEST(Engine, DegenerateQubitPairRejectedOnBothEntryPoints)
{
    // Op::cz's factory does not validate q0 != q1; applyOp and the
    // fused applyCircuit path must both reject it identically.
    Statevector psi(4);
    qcir::Op bad = qcir::Op::cz(2, 2);
    EXPECT_THROW(psi.applyOp(bad), std::invalid_argument);
    Circuit c(4);
    c.add(bad);
    EXPECT_THROW(psi.applyCircuit(c), std::invalid_argument);
}

TEST(Engine, CeilingAndAllocationGuards)
{
    EXPECT_THROW(Statevector(0), std::invalid_argument);
    EXPECT_THROW(Statevector(31), std::invalid_argument);
    EXPECT_THROW(Statevector(-3), std::invalid_argument);
    try {
        Statevector(31);
        FAIL() << "no throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("30"),
                  std::string::npos);
    }
}

TEST(Noise, MontrealCalibrationPinsPaperValues)
{
    // Paper Sec. IV: IBMQ Montreal, 2021-10-29.
    NoiseModel nm = montrealNoise();
    EXPECT_DOUBLE_EQ(nm.err2q, 0.01241);
    EXPECT_DOUBLE_EQ(nm.err1q, 0.0004);
    EXPECT_DOUBLE_EQ(nm.errRo, 0.01832);
    EXPECT_DOUBLE_EQ(nm.t1Us, 87.75);
    EXPECT_DOUBLE_EQ(nm.t2Us, 72.65);
    EXPECT_DOUBLE_EQ(nm.gate2qNs, 350.0);
    EXPECT_DOUBLE_EQ(nm.gate1qNs, 35.0);

    // espRatio sanity under the calibrated model: strictly damped
    // but non-zero for a Fig. 10-sized circuit.
    CircuitCost cost{60, 100, 30, 30, 10};
    double r = espRatio(0.7, cost, nm);
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 0.7);
}

TEST(Engine, ParallelNoiselessQaoaSmoke)
{
    // An 18-qubit end-to-end pass on the engine: unitary circuit,
    // norm preserved, cost ratio in the plausible band.
    graph::Graph g(1, {});
    Circuit c = qaoaCircuit(18, 1, 321, g);
    Engine eng(4);
    Statevector psi(18, &eng);
    psi.applyCircuit(c);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-9);
    int cmin = g.numEdges() - 2 * ham::maxCut(g);
    double ratio = psi.expectationZZ(g) / cmin;
    EXPECT_GT(ratio, 0.2);
    EXPECT_LT(ratio, 1.0);
}
