/**
 * @file
 * Statistical tests of the Born-rule samplers: chi-squared
 * goodness-of-fit of sample()/sampleMany() draws against the exact
 * amplitude distribution, with fixed seeds so the suite is
 * deterministic — plus correctness tests of the new expectationZ
 * probe against direct amplitude sums.
 *
 * Thresholds: the chi-squared statistic with k - 1 degrees of
 * freedom has mean k - 1 and variance 2(k - 1); we gate at the
 * p ~ 1e-4 quantile, loose enough to never flake on a fixed seed
 * and tight enough to catch any systematic sampler bias (a wrong
 * prefix-sum or an off-by-one basis index shifts the statistic by
 * orders of magnitude).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "graph/random_graph.h"
#include "ham/models.h"
#include "ham/trotter.h"
#include "sim/statevector.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;

namespace {

/** A 4-qubit state with widely spread probabilities. */
sim::Statevector
preparedState(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    graph::Graph g = graph::randomRegularGraph(4, 3, rng);
    ham::TwoLocalHamiltonian h =
        ham::heisenbergOnGraph(g, rng);
    sim::Statevector psi(4);
    psi.applyCircuit(ham::trotterStep(h, 0.7));
    return psi;
}

double
chiSquared(const std::vector<int> &counts,
           const std::vector<double> &probs, int shots)
{
    double stat = 0.0;
    for (size_t b = 0; b < counts.size(); ++b) {
        double expect = probs[b] * shots;
        if (expect < 1e-12) {
            // Zero-probability bins must stay empty.
            EXPECT_EQ(counts[b], 0) << "basis " << b;
            continue;
        }
        double d = counts[b] - expect;
        stat += d * d / expect;
    }
    return stat;
}

} // namespace

TEST(SamplingStats, SampleManyMatchesExactDistribution)
{
    sim::Statevector psi = preparedState(11);
    const int dim = 16, shots = 40000;
    std::vector<double> probs(dim);
    for (int b = 0; b < dim; ++b)
        probs[b] = psi.probability(b);

    std::mt19937_64 rng(123);
    std::vector<int> counts(dim, 0);
    for (std::uint64_t s : psi.sampleMany(rng, shots)) {
        ASSERT_LT(s, static_cast<std::uint64_t>(dim));
        ++counts[s];
    }

    // 15 dof: p ~ 1e-4 at ~44.3.
    EXPECT_LT(chiSquared(counts, probs, shots), 44.3);
}

TEST(SamplingStats, SingleSampleLoopMatchesToo)
{
    sim::Statevector psi = preparedState(22);
    const int dim = 16, shots = 20000;
    std::vector<double> probs(dim);
    for (int b = 0; b < dim; ++b)
        probs[b] = psi.probability(b);

    std::mt19937_64 rng(77);
    std::vector<int> counts(dim, 0);
    for (int s = 0; s < shots; ++s)
        ++counts[psi.sample(rng)];
    EXPECT_LT(chiSquared(counts, probs, shots), 44.3);
}

TEST(SamplingStats, UniformSuperpositionIsUniform)
{
    sim::Statevector psi(3);
    for (int q = 0; q < 3; ++q)
        psi.apply1q(q, linalg::hadamard());
    const int dim = 8, shots = 32000;
    std::vector<double> probs(dim, 1.0 / dim);

    std::mt19937_64 rng(5);
    std::vector<int> counts(dim, 0);
    for (std::uint64_t s : psi.sampleMany(rng, shots))
        ++counts[s];
    // 7 dof: p ~ 1e-4 at ~29.9.
    EXPECT_LT(chiSquared(counts, probs, shots), 29.9);
}

TEST(SamplingStats, FixedSeedDrawsArePinned)
{
    // Regression pin: the exact draw sequence is part of the
    // sampler's determinism contract (prefix-sum + binary search
    // must keep matching the streaming scan).
    sim::Statevector psi = preparedState(33);
    std::mt19937_64 a(9), b(9);
    std::vector<std::uint64_t> many = psi.sampleMany(a, 5);
    for (std::uint64_t v : many)
        EXPECT_EQ(v, psi.sample(b));
}

TEST(ExpectationZ, MatchesDirectAmplitudeSum)
{
    sim::Statevector psi = preparedState(44);
    for (int q = 0; q < 4; ++q) {
        double direct = 0.0;
        for (std::uint64_t b = 0; b < psi.dim(); ++b)
            direct += psi.probability(b) *
                      ((b >> q) & 1 ? -1.0 : 1.0);
        EXPECT_NEAR(psi.expectationZ(q), direct, 1e-12);
    }
    EXPECT_THROW(psi.expectationZ(4), std::invalid_argument);
    EXPECT_THROW(psi.expectationZ(-1), std::invalid_argument);
}

TEST(ExpectationZ, FreshAndLiveSpanStates)
{
    // |0...0>: every <Z_q> is exactly 1, including qubits beyond
    // the live span.
    sim::Statevector psi(5);
    for (int q = 0; q < 5; ++q)
        EXPECT_DOUBLE_EQ(psi.expectationZ(q), 1.0);
    // |+> on qubit 0: <Z_0> = 0 exactly, others untouched.
    psi.apply1q(0, linalg::hadamard());
    EXPECT_NEAR(psi.expectationZ(0), 0.0, 1e-15);
    EXPECT_DOUBLE_EQ(psi.expectationZ(3), 1.0);
}
