/**
 * @file
 * Tests of the 64-byte-aligned amplitude buffer guarantee the SIMD
 * kernels rely on (aligned loads/stores on the AVX-512 path assume
 * the base address by construction, not by luck).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/aligned.h"

using namespace tqan;
using namespace tqan::sim;

TEST(AlignedBuffer, EveryAllocationIs64ByteAligned)
{
    // Sizes straddle the small/large allocator classes and odd
    // counts; every single allocation must land on the boundary —
    // the check is a guarantee, not a sampling statement.
    for (std::size_t count :
         {std::size_t(1), std::size_t(2), std::size_t(3),
          std::size_t(7), std::size_t(64), std::size_t(1000),
          std::size_t(1) << 14, (std::size_t(1) << 14) + 1}) {
        AmpBuffer buf(count);
        EXPECT_TRUE(isAligned(buf)) << count;
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64,
                  0u)
            << count;
    }
}

TEST(AlignedBuffer, EmptyAndMovedBuffersAreTriviallyAligned)
{
    AmpBuffer empty;
    EXPECT_TRUE(isAligned(empty));

    AmpBuffer src(128);
    AmpBuffer dst(std::move(src));
    EXPECT_TRUE(isAligned(dst));
    EXPECT_TRUE(isAligned(src));  // moved-from is empty or valid
}

TEST(AlignedBuffer, ReallocationKeepsTheGuarantee)
{
    AmpBuffer buf;
    for (int i = 0; i < 12; ++i) {
        buf.resize(buf.size() * 2 + 5);
        EXPECT_TRUE(isAligned(buf)) << buf.size();
    }
}

TEST(AlignedBuffer, StatevectorDimensionsAreAligned)
{
    // The exact power-of-two sizes the Statevector allocates (the
    // buffer type is the same; the simulator has no other storage).
    for (int n : {1, 5, 10, 20}) {
        AmpBuffer buf(std::uint64_t(1) << n);
        EXPECT_TRUE(isAligned(buf)) << "n=" << n;
    }
    static_assert(alignof(linalg::Cx) <= 64,
                  "AmpBuffer alignment must dominate the natural "
                  "alignment");
}
