/**
 * @file
 * Kernel-correctness pinning: every specialized, fused and strided
 * path of the simulation engine against the verbatim pre-engine
 * kernels (sim/reference.h), across random circuits, qubit counts
 * 1-12 and both qubit orderings (q0 < q1 and q0 > q1).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include <cstring>

#include "graph/random_graph.h"
#include "ham/qaoa.h"
#include "sim/reference.h"
#include "sim/statevector.h"
#include "simd/dispatch.h"

using namespace tqan;
using namespace tqan::sim;
using tqan::qcir::Circuit;
using tqan::qcir::Op;

namespace {

linalg::Mat2
randU2(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    return linalg::rz(ang(rng)) * linalg::ry(ang(rng)) *
           linalg::rz(ang(rng));
}

linalg::Mat4
randU4(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> ang(-1.0, 1.0);
    return linalg::expXxYyZz(ang(rng), ang(rng), ang(rng)) *
           linalg::kron(randU2(rng), randU2(rng));
}

/** Random circuit drawing from every op kind the simulator
 * dispatches on (generic, diagonal, swap-like, anti-diagonal
 * specializations all get exercised). */
Circuit
randomCircuit(int n, int length, std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    std::uniform_int_distribution<int> pick1(0, n - 1);
    Circuit c(n);
    for (int i = 0; i < length; ++i) {
        int kind = static_cast<int>(rng() % 10);
        int q0 = pick1(rng);
        int q1 = pick1(rng);
        while (n > 1 && q1 == q0)
            q1 = pick1(rng);
        if (n < 2)
            kind %= 4;  // single-qubit kinds only
        switch (kind) {
          case 0:
            c.add(Op::rx(q0, ang(rng)));
            break;
          case 1:
            c.add(Op::ry(q0, ang(rng)));
            break;
          case 2:
            c.add(Op::rz(q0, ang(rng)));
            break;
          case 3:
            c.add(Op::u1q(q0, randU2(rng)));
            break;
          case 4:
            // Diagonal two-qubit class (RZZ).
            c.add(Op::interact(q0, q1, 0.0, 0.0, ang(rng)));
            break;
          case 5:
            c.add(Op::interact(q0, q1, ang(rng), ang(rng),
                               ang(rng)));
            break;
          case 6:
            c.add(Op::swap(q0, q1));
            break;
          case 7:
            c.add(Op::dressedSwap(q0, q1, 0.0, 0.0, ang(rng)));
            break;
          case 8:
            c.add(rng() % 2 ? Op::cz(q0, q1)
                            : Op::cnot(q0, q1));
            break;
          default:
            c.add(rng() % 2 ? Op::iswap(q0, q1)
                            : Op::u2q(q0, q1, randU4(rng)));
            break;
        }
    }
    return c;
}

/** Max |amp difference| between the engine and the reference. */
double
maxAmpDiff(const Statevector &a, const ref::RefStatevector &b)
{
    double worst = 0.0;
    for (std::uint64_t i = 0; i < a.dim(); ++i)
        worst = std::max(worst,
                         std::abs(a.amplitude(i) - b.amplitude(i)));
    return worst;
}

/** Run one circuit through both simulators. */
void
expectCircuitMatches(const Circuit &c, int n, double tol = 1e-12)
{
    Statevector psi(n);
    ref::RefStatevector refPsi(n);
    psi.applyCircuit(c);
    refPsi.applyCircuit(c);
    EXPECT_LT(maxAmpDiff(psi, refPsi), tol);
}

/** All amplitudes of one circuit run under a pinned SIMD path. */
std::vector<linalg::Cx>
ampsUnderIsa(const Circuit &c, int n, simd::Isa isa)
{
    simd::ScopedForceIsa force(isa);
    Statevector psi(n);
    psi.applyCircuit(c);
    std::vector<linalg::Cx> amps(psi.dim());
    for (std::uint64_t i = 0; i < psi.dim(); ++i)
        amps[i] = psi.amplitude(i);
    return amps;
}

/** Bitwise equality (memcmp, so -0.0 != +0.0 and NaNs count):
 * the contract for every elementwise SIMD kernel. */
bool
bitIdentical(const std::vector<linalg::Cx> &a,
             const std::vector<linalg::Cx> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(linalg::Cx)) == 0);
}

} // namespace

TEST(Kernels, RandomCircuitsMatchReferenceAcrossSizes)
{
    std::mt19937_64 rng(2024);
    for (int n = 1; n <= 12; ++n) {
        for (int rep = 0; rep < 3; ++rep) {
            Circuit c = randomCircuit(n, 8 + 4 * n, rng);
            Statevector psi(n);
            ref::RefStatevector refPsi(n);
            psi.applyCircuit(c);
            refPsi.applyCircuit(c);
            EXPECT_LT(maxAmpDiff(psi, refPsi), 1e-12)
                << "n=" << n << " rep=" << rep;
            EXPECT_NEAR(psi.norm(), refPsi.norm(), 1e-12);
        }
    }
}

TEST(Kernels, PerOpPathMatchesReferenceBothOrderings)
{
    // Every dispatched kernel class, explicitly, in both qubit
    // orderings, on a non-trivial state.
    std::mt19937_64 rng(77);
    const int n = 5;
    Circuit prep = randomCircuit(n, 20, rng);

    std::vector<Op> cases;
    for (auto [a, b] : {std::pair<int, int>{1, 3},
                        std::pair<int, int>{3, 1}}) {
        cases.push_back(Op::interact(a, b, 0.0, 0.0, 0.7));  // diag
        cases.push_back(Op::cz(a, b));                       // diag
        cases.push_back(Op::swap(a, b));             // permutation
        cases.push_back(Op::iswap(a, b));            // swap-like
        cases.push_back(Op::dressedSwap(a, b, 0.0, 0.0, 0.4));
        cases.push_back(Op::cnot(a, b));             // generic
        cases.push_back(Op::interact(a, b, 0.3, 0.2, 0.1));
        cases.push_back(Op::u2q(a, b, randU4(rng)));
    }
    cases.push_back(Op::rz(2, 0.9));   // diagonal 1q
    cases.push_back(Op::rx(2, 1.1));   // generic 1q
    cases.push_back(Op::u1q(4, linalg::hadamard()));

    for (const Op &op : cases) {
        Statevector psi(n);
        ref::RefStatevector refPsi(n);
        psi.applyCircuit(prep);
        refPsi.applyCircuit(prep);
        psi.applyOp(op);
        refPsi.applyOp(op);
        EXPECT_LT(maxAmpDiff(psi, refPsi), 1e-12) << op.str();
    }
}

TEST(Kernels, PauliKernelsMatchReference)
{
    std::mt19937_64 rng(78);
    const int n = 6;
    Circuit prep = randomCircuit(n, 25, rng);
    for (char axis : {'X', 'Y', 'Z'}) {
        for (int q : {0, 3, 5}) {
            Statevector psi(n);
            ref::RefStatevector refPsi(n);
            psi.applyCircuit(prep);
            refPsi.applyCircuit(prep);
            psi.applyPauli(q, axis);
            refPsi.applyPauli(q, axis);
            EXPECT_LT(maxAmpDiff(psi, refPsi), 1e-12)
                << axis << q;
        }
    }
}

TEST(Kernels, FusedSingleQubitRunsMatchSequential)
{
    // Long 1q runs per qubit (fused into one Mat2, possibly into a
    // kron pair) interleaved with 2q barriers.
    std::mt19937_64 rng(79);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    const int n = 4;
    Circuit c(n);
    for (int q = 0; q < n; ++q) {
        c.add(Op::rx(q, ang(rng)));
        c.add(Op::rz(q, ang(rng)));
        c.add(Op::ry(q, ang(rng)));
        c.add(Op::u1q(q, randU2(rng)));
    }
    c.add(Op::cnot(0, 2));
    for (int q = 0; q < n; ++q) {
        c.add(Op::rz(q, ang(rng)));
        c.add(Op::rz(q, ang(rng)));
    }
    c.add(Op::interact(1, 3, 0.0, 0.0, 0.8));
    c.add(Op::rx(1, ang(rng)));
    expectCircuitMatches(c, n);
}

TEST(Kernels, DiagonalRunFusionMatchesReference)
{
    // A whole uniform ZZ layer (the packed-parity fast path) and a
    // mixed-angle layer (the general product path), interleaved
    // with the 1q gates a QAOA circuit has.
    std::mt19937_64 rng(80);
    const int n = 8;
    graph::Graph g = graph::randomRegularGraph(n, 3, rng);

    // Uniform angles: qaoaStateCircuit is exactly this shape.
    Circuit uniform =
        ham::qaoaStateCircuit(g, ham::qaoaFixedAngles(2));
    expectCircuitMatches(uniform, n);

    // Mixed angles break the uniform fast path.
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    Circuit mixed(n);
    for (int q = 0; q < n; ++q)
        mixed.add(Op::u1q(q, linalg::hadamard()));
    for (const auto &[u, v] : g.edges())
        mixed.add(Op::interact(u, v, 0.0, 0.0, ang(rng)));
    for (int q = 0; q < n; ++q)
        mixed.add(Op::rx(q, 0.3));
    expectCircuitMatches(mixed, n);

    // A diagonal run interrupted by a non-diagonal gate on one of
    // its qubits (forces the ordering-preserving partial flush).
    Circuit interrupted(n);
    for (int q = 0; q < n; ++q)
        interrupted.add(Op::u1q(q, linalg::hadamard()));
    interrupted.add(Op::interact(0, 1, 0.0, 0.0, 0.5));
    interrupted.add(Op::interact(2, 3, 0.0, 0.0, 0.5));
    interrupted.add(Op::rx(1, 0.7));  // 1q after a diag on q1
    interrupted.add(Op::interact(1, 2, 0.0, 0.0, 0.5));
    interrupted.add(Op::cnot(3, 4));  // non-diag barrier
    interrupted.add(Op::interact(3, 4, 0.0, 0.0, 0.5));
    expectCircuitMatches(interrupted, n);
}

TEST(Kernels, ExpectationZZBranchlessMatchesOldImplementation)
{
    // Property test of the satellite: per-edge bitmask + popcount
    // parity against the reference shift/XOR loop, to 1e-12, on
    // random states.
    std::mt19937_64 rng(81);
    for (int n : {2, 5, 9, 12}) {
        Circuit prep = randomCircuit(n, 6 * n, rng);
        Statevector psi(n);
        ref::RefStatevector refPsi(n);
        psi.applyCircuit(prep);
        refPsi.applyCircuit(prep);
        for (int rep = 0; rep < 3; ++rep) {
            graph::Graph g = graph::erdosRenyi(n, 0.5, rng);
            EXPECT_NEAR(psi.expectationZZ(g.edges()),
                        refPsi.expectationZZ(g.edges()), 1e-12)
                << "n=" << n;
        }
    }
}

TEST(SimdKernels, EveryIsaPathBitIdenticalToScalarOnRandomCircuits)
{
    // The tentpole contract: the elementwise vector kernels
    // (diagonal 1q/2q, packed phase, generic 4x4) perform exactly
    // the scalar oracle's products and sums per amplitude, so every
    // host-supported ISA must reproduce the forced-scalar
    // amplitudes bit for bit — not within a tolerance.
    std::mt19937_64 rng(4096);
    for (int n = 1; n <= 12; ++n) {
        for (int rep = 0; rep < 3; ++rep) {
            Circuit c = randomCircuit(n, 8 + 4 * n, rng);
            auto scalar = ampsUnderIsa(c, n, simd::Isa::Scalar);
            for (simd::Isa isa : simd::availableIsas()) {
                if (isa == simd::Isa::Scalar)
                    continue;
                EXPECT_TRUE(
                    bitIdentical(ampsUnderIsa(c, n, isa), scalar))
                    << simd::isaName(isa) << " n=" << n
                    << " rep=" << rep;
            }
        }
    }
}

TEST(SimdKernels, EveryIsaPathBitIdenticalOnQaoaLayers)
{
    // QAOA layer shapes drive the packed-parity phase sweep and the
    // uniform-diagonal fast paths the random-circuit mix reaches
    // only rarely.
    std::mt19937_64 rng(4097);
    for (int n : {4, 8, 10, 12}) {
        graph::Graph g = graph::randomRegularGraph(n, 3, rng);
        Circuit c =
            ham::qaoaStateCircuit(g, ham::qaoaFixedAngles(2));
        auto scalar = ampsUnderIsa(c, n, simd::Isa::Scalar);
        for (simd::Isa isa : simd::availableIsas()) {
            if (isa == simd::Isa::Scalar)
                continue;
            EXPECT_TRUE(
                bitIdentical(ampsUnderIsa(c, n, isa), scalar))
                << simd::isaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernels, ExpectationZZAcrossIsasWithinDocumentedBound)
{
    // sumZZPacked reassociates the reduction across vector lanes,
    // so exact equality is NOT required; the documented bound is
    // 1e-12 absolute (see simd/dispatch.h).
    std::mt19937_64 rng(4098);
    for (int n : {2, 5, 9, 12}) {
        Circuit prep = randomCircuit(n, 6 * n, rng);
        graph::Graph g = graph::erdosRenyi(n, 0.5, rng);
        double scalar;
        {
            simd::ScopedForceIsa force(simd::Isa::Scalar);
            Statevector psi(n);
            psi.applyCircuit(prep);
            scalar = psi.expectationZZ(g.edges());
        }
        for (simd::Isa isa : simd::availableIsas()) {
            simd::ScopedForceIsa force(isa);
            Statevector psi(n);
            psi.applyCircuit(prep);
            EXPECT_NEAR(psi.expectationZZ(g.edges()), scalar,
                        1e-12)
                << simd::isaName(isa) << " n=" << n;
        }
    }
}

TEST(Kernels, SampleDrawsAreBitIdenticalToOldPath)
{
    // The prefix-sum + binary-search sampler must return exactly
    // what the old linear scan returned for the same rng stream.
    std::mt19937_64 rng(82);
    const int n = 7;
    Circuit prep = randomCircuit(n, 40, rng);
    Statevector psi(n);
    ref::RefStatevector refPsi(n);
    psi.applyCircuit(prep);
    refPsi.applyCircuit(prep);

    std::mt19937_64 rngNew(555), rngOld(555);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(psi.sample(rngNew), refPsi.sample(rngOld));

    // sampleMany draw i == i-th successive sample() call.
    std::mt19937_64 rngMany(556), rngLoop(556);
    auto many = psi.sampleMany(rngMany, 100);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(many[i], refPsi.sample(rngLoop)) << i;
}

TEST(Kernels, SampleManyFollowsBornDistribution)
{
    Statevector psi(2);
    psi.apply1q(0, linalg::hadamard());
    psi.apply2q(0, 1, linalg::cnot(0, 1));  // Bell: 00 / 11 only
    std::mt19937_64 rng(83);
    auto draws = psi.sampleMany(rng, 4000);
    int ones = 0;
    for (auto d : draws) {
        EXPECT_TRUE(d == 0b00 || d == 0b11);
        ones += d == 0b11;
    }
    EXPECT_NEAR(ones / 4000.0, 0.5, 0.05);
}
