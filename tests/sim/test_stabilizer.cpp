/**
 * @file
 * Stabilizer tableau unit tests: hand-checked small states, the
 * random-Clifford-circuit cross-check against the statevector
 * engine (n <= 12), Clifford recognition (per-op, run fusion,
 * negative cases), and stabilizer-generator self-consistency.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/matrix.h"
#include "qcir/circuit.h"
#include "sim/stabilizer.h"
#include "sim/statevector.h"

using namespace tqan;
using qcir::Circuit;
using qcir::Op;
using sim::PauliString;
using sim::StabilizerTableau;

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Random circuit drawn entirely from Clifford generators. */
Circuit
randomCliffordCircuit(int n, int gates, std::mt19937_64 &rng)
{
    Circuit c(n);
    std::uniform_int_distribution<int> kind(0, 7);
    std::uniform_int_distribution<int> qd(0, n - 1);
    std::uniform_int_distribution<int> kd(0, 3);
    for (int i = 0; i < gates; ++i) {
        int q0 = qd(rng), q1 = qd(rng);
        while (n > 1 && q1 == q0)
            q1 = qd(rng);
        switch (kind(rng)) {
          case 0:
            c.add(Op::rz(q0, kd(rng) * kPi / 2));
            break;
          case 1:
            c.add(Op::rx(q0, kd(rng) * kPi / 2));
            break;
          case 2:
            c.add(Op::ry(q0, kd(rng) * kPi / 2));
            break;
          case 3:
            c.add(Op::interact(q0, q1, kd(rng) * kPi / 4,
                               kd(rng) * kPi / 4,
                               kd(rng) * kPi / 4));
            break;
          case 4:
            c.add(Op::cnot(q0, q1));
            break;
          case 5:
            c.add(Op::cz(q0, q1));
            break;
          case 6:
            c.add(Op::swap(q0, q1));
            break;
          default:
            c.add(Op::iswap(q0, q1));
            break;
        }
    }
    return c;
}

/** Signed <psi| P |psi> on the dense simulator. */
double
denseExpectPauli(const sim::Statevector &psi, const PauliString &p)
{
    sim::Statevector phi = psi;
    for (int q = 0; q < p.n; ++q) {
        bool xb = p.getX(q), zb = p.getZ(q);
        if (xb && zb)
            phi.apply1q(q, linalg::pauliY());
        else if (xb)
            phi.apply1q(q, linalg::pauliX());
        else if (zb)
            phi.apply1q(q, linalg::pauliZ());
    }
    linalg::Cx acc(0.0, 0.0);
    for (std::uint64_t b = 0; b < psi.dim(); ++b)
        acc += std::conj(psi.amplitude(b)) * phi.amplitude(b);
    double val = acc.real() * (p.negative ? -1.0 : 1.0);
    EXPECT_NEAR(acc.imag(), 0.0, 1e-9);
    return val;
}

PauliString
randomPauli(int n, std::mt19937_64 &rng)
{
    PauliString p(n);
    std::uniform_int_distribution<int> cd(0, 3);
    for (int q = 0; q < n; ++q) {
        int code = cd(rng);
        if (code & 1)
            p.setX(q);
        if (code & 2)
            p.setZ(q);
    }
    p.negative = (rng() & 1) != 0;
    return p;
}

} // namespace

TEST(Stabilizer, GroundStateExpectations)
{
    StabilizerTableau t(3);
    EXPECT_EQ(t.expectationZ(0), 1);
    EXPECT_EQ(t.expectationZ(2), 1);
    PauliString px(3);
    px.setX(1);
    EXPECT_EQ(t.expectationPauli(px), 0);
}

TEST(Stabilizer, BellState)
{
    StabilizerTableau t(2);
    t.h(0);
    t.cnot(0, 1);
    EXPECT_EQ(t.expectationZ(0), 0);
    EXPECT_EQ(t.expectationZ(1), 0);
    EXPECT_EQ(t.expectationPauli(PauliString::doubleZ(2, 0, 1)), 1);
    PauliString xx(2);
    xx.setX(0);
    xx.setX(1);
    EXPECT_EQ(t.expectationPauli(xx), 1);
    PauliString yy(2);
    yy.setX(0);
    yy.setZ(0);
    yy.setX(1);
    yy.setZ(1);
    EXPECT_EQ(t.expectationPauli(yy), -1);
}

TEST(Stabilizer, SingleQubitStates)
{
    // |1> = X|0>: <Z> = -1.
    StabilizerTableau t(1);
    t.x(0);
    EXPECT_EQ(t.expectationZ(0), -1);

    // |+i> = S H |0>: <Y> = +1, <Z> = <X> = 0.
    StabilizerTableau u(1);
    u.h(0);
    u.s(0);
    PauliString y(1);
    y.setX(0);
    y.setZ(0);
    EXPECT_EQ(u.expectationPauli(y), 1);
    EXPECT_EQ(u.expectationZ(0), 0);
}

TEST(Stabilizer, ISwapMatchesUnitary)
{
    // iSWAP on |10>: tableau vs dense, via Z expectations.
    StabilizerTableau t(2);
    t.x(0);
    t.iswap(0, 1);
    EXPECT_EQ(t.expectationZ(0), 1);   // qubit 0 back to |0>
    EXPECT_EQ(t.expectationZ(1), -1);  // excitation moved to qubit 1

    sim::Statevector psi(2);
    psi.apply1q(0, linalg::pauliX());
    psi.applyOp(Op::iswap(0, 1));
    EXPECT_NEAR(psi.expectationZ(0), 1.0, 1e-12);
    EXPECT_NEAR(psi.expectationZ(1), -1.0, 1e-12);
}

TEST(Stabilizer, RandomCircuitsMatchStatevector)
{
    std::mt19937_64 rng(0xC11FF0D5ULL);
    for (int rep = 0; rep < 40; ++rep) {
        int n = 2 + static_cast<int>(rng() % 11);  // 2..12
        Circuit c = randomCliffordCircuit(n, 3 * n, rng);
        ASSERT_TRUE(sim::isCliffordCircuit(c));

        StabilizerTableau tab(n);
        tab.applyCircuit(c);
        sim::Statevector psi(n);
        psi.applyCircuit(c);

        for (int q = 0; q < n; ++q)
            EXPECT_NEAR(psi.expectationZ(q),
                        static_cast<double>(tab.expectationZ(q)),
                        1e-9)
                << "rep " << rep << " qubit " << q;
        for (int k = 0; k < 6; ++k) {
            PauliString p = randomPauli(n, rng);
            EXPECT_NEAR(denseExpectPauli(psi, p),
                        static_cast<double>(tab.expectationPauli(p)),
                        1e-9)
                << "rep " << rep << " pauli " << p.str();
        }
    }
}

TEST(Stabilizer, StabilizerRowsHaveUnitExpectation)
{
    std::mt19937_64 rng(77);
    Circuit c = randomCliffordCircuit(8, 30, rng);
    StabilizerTableau tab(8);
    tab.applyCircuit(c);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(tab.expectationPauli(tab.stabilizerRow(i)), 1)
            << "generator " << i;
}

TEST(Stabilizer, RecognizesCliffordOps)
{
    EXPECT_TRUE(sim::isCliffordOp(Op::rz(0, kPi / 2)));
    EXPECT_TRUE(sim::isCliffordOp(Op::rx(0, -kPi)));
    EXPECT_TRUE(sim::isCliffordOp(Op::cnot(0, 1)));
    EXPECT_TRUE(sim::isCliffordOp(
        Op::interact(0, 1, kPi / 4, 0.0, 3 * kPi / 4)));
    EXPECT_TRUE(sim::isCliffordOp(
        Op::dressedSwap(0, 1, 0.0, kPi / 2, kPi / 4)));

    EXPECT_FALSE(sim::isCliffordOp(Op::rz(0, 0.3)));
    EXPECT_FALSE(sim::isCliffordOp(Op::interact(0, 1, 0.2, 0.0, 0.0)));
    EXPECT_FALSE(sim::isCliffordOp(Op::syc(0, 1)));
}

TEST(Stabilizer, RunFusionRecognizesCompositeCliffords)
{
    // Each gate alone is non-Clifford; the run multiplies to
    // Rz(pi/2), so fusion must accept the circuit...
    Circuit c(2);
    c.add(Op::rz(0, 0.3));
    c.add(Op::rz(0, kPi / 2 - 0.3));
    c.add(Op::cnot(0, 1));
    EXPECT_TRUE(sim::isCliffordCircuit(c));

    // ...and the tableau must agree with the dense engine on it.
    StabilizerTableau tab(2);
    tab.applyCircuit(c);
    sim::Statevector psi(2);
    psi.applyCircuit(c);
    for (int q = 0; q < 2; ++q)
        EXPECT_NEAR(psi.expectationZ(q),
                    static_cast<double>(tab.expectationZ(q)), 1e-9);

    // A run that does NOT fuse to a Clifford is rejected.
    Circuit bad(2);
    bad.add(Op::rz(0, 0.3));
    bad.add(Op::cnot(0, 1));
    EXPECT_FALSE(sim::isCliffordCircuit(bad));
    StabilizerTableau t2(2);
    EXPECT_THROW(t2.applyCircuit(bad), std::invalid_argument);
}
