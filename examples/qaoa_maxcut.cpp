/**
 * @file
 * QAOA MaxCut end to end: generate a random 3-regular instance,
 * compile the p = 2 QAOA circuit to IBMQ Montreal with 2QAN (compile
 * the first layer, reverse for the second), and evaluate the
 * application performance <C>/C_min noiselessly and under the
 * calibrated Montreal noise model -- the workflow behind the paper's
 * Fig. 10.
 *
 * Build & run:  ./build/examples/qaoa_maxcut
 */

#include <cstdio>
#include <random>

#include "core/compiler.h"
#include "core/metrics.h"
#include "decomp/pass.h"
#include "device/devices.h"
#include "graph/random_graph.h"
#include "ham/qaoa.h"
#include "ham/trotter.h"
#include "sim/qaoa_eval.h"

using namespace tqan;

int
main()
{
    // Problem instance: MaxCut on a random 3-regular graph.
    std::mt19937_64 rng(11);
    graph::Graph g = graph::randomRegularGraph(10, 3, rng);
    int cmin = g.numEdges() - 2 * ham::maxCut(g);
    std::printf("instance: n=10, |E|=%d, maxcut=%d, Cmin=%d\n",
                g.numEdges(), ham::maxCut(g), cmin);

    auto angles = ham::qaoaFixedAngles(2);
    double noiseless = sim::noiselessRatio(g, angles);
    std::printf("noiseless <C>/Cmin at fixed angles: %.3f\n",
                noiseless);

    // Compile layer 1 with 2QAN; layer 2 reuses it reversed.
    core::CompilerOptions opt;
    opt.seed = 3;
    core::TqanCompiler compiler(device::montreal27(), opt);
    auto layer1 = ham::trotterStep(
        ham::qaoaLayerHamiltonian(g, angles[0]), 1.0);
    auto res = compiler.compile(layer1);
    std::printf("layer circuit: %d SWAPs (%d dressed)\n",
                res.sched.swapCount, res.sched.dressedCount);

    // Full 2-layer device circuit with the |+> preparation.
    qcir::Circuit fwd = res.sched.deviceCircuit;
    qcir::Circuit layer2 = fwd.reversedTwoQubitOrder();
    // Retarget layer 2's angles.
    for (auto &op : layer2.ops()) {
        if (op.kind == qcir::OpKind::Interact ||
            op.kind == qcir::OpKind::DressedSwap)
            op.azz *= angles[1].gamma / angles[0].gamma;
        if (op.kind == qcir::OpKind::Rx)
            op.theta *= angles[1].beta / angles[0].beta;
    }
    qcir::Circuit device(27);
    for (int q = 0; q < 10; ++q)
        device.add(qcir::Op::u1q(res.sched.initialMap[q],
                                 linalg::hadamard()));
    device.append(fwd);
    device.append(layer2);

    // ESP-model estimate.
    sim::NoiseModel nm = sim::montrealNoise();
    auto cost = sim::tallyCircuit(
        decomp::expandForMetrics(device, device::GateSet::Cnot), 10);
    double espv = sim::esp(cost, nm);
    std::printf("compiled: %d CNOTs, ESP %.3f, modelled <C>/Cmin "
                "%.3f\n",
                cost.gates2q, espv, espv * noiseless);

    // Trajectory simulation on the decomposed circuit (p even: the
    // register returns to the initial map).
    qcir::Circuit hw = decomp::decomposeToCnot(device);
    std::vector<int> qmap;
    qcir::Circuit compact = sim::compactCircuit(hw, qmap);
    std::vector<graph::Edge> edges;
    for (const auto &[u, v] : g.edges())
        edges.push_back({qmap[res.sched.initialMap[u]],
                         qmap[res.sched.initialMap[v]]});
    std::mt19937_64 trng(5);
    double traj =
        sim::trajectoryRatio(compact, edges, cmin, nm, 100, trng);
    std::printf("trajectory-simulated <C>/Cmin: %.3f\n", traj);
    return 0;
}
