/**
 * @file
 * Quickstart: compile one Trotter step of a 12-qubit NNN Heisenberg
 * chain onto IBMQ Montreal with tqan (the 2QAN reproduction), print
 * the compilation metrics against the NoMap baseline, and emit the
 * CNOT-decomposed hardware circuit.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <random>

#include "core/compiler.h"
#include "core/metrics.h"
#include "decomp/pass.h"
#include "device/devices.h"
#include "ham/models.h"
#include "ham/trotter.h"

using namespace tqan;

int
main()
{
    // 1. A 2-local Hamiltonian: Heisenberg chain with next-nearest-
    //    neighbour couplings, coefficients sampled U(0, pi).
    std::mt19937_64 rng(2022);
    ham::TwoLocalHamiltonian h = ham::nnnHeisenberg(12, rng);
    std::printf("Hamiltonian: %zu two-qubit terms on %d qubits\n",
                h.pairs().size(), h.numQubits());

    // 2. One Trotter step as an application-level circuit.
    qcir::Circuit step = ham::trotterStep(h, /*t=*/1.0);

    // 3. Compile to IBMQ Montreal (27 qubits, CNOT gate set).
    core::CompilerOptions opt;
    opt.seed = 7;
    core::TqanCompiler compiler(device::montreal27(), opt);
    core::CompileResult result = compiler.compile(step);

    std::printf("placement found by Tabu-QAP in %.1f ms\n",
                result.mappingSeconds * 1e3);
    std::printf("inserted SWAPs: %d (of which dressed: %d)\n",
                result.sched.swapCount, result.sched.dressedCount);

    // 4. Metrics vs. the connectivity-unconstrained baseline.
    auto m = core::computeMetrics(result.sched, step,
                                  device::GateSet::Cnot);
    std::printf("hardware CNOTs: %d (NoMap baseline %d, overhead "
                "%d)\n",
                m.native2q, m.native2qNoMap, m.gateOverhead());
    std::printf("CNOT depth: %d (NoMap %d)\n", m.depth2q,
                m.depth2qNoMap);

    // 5. Decompose to the hardware gate set.
    qcir::Circuit hw =
        decomp::decomposeToCnot(result.sched.deviceCircuit);
    std::printf("decomposed circuit: %d ops, %d CNOTs, depth %d\n",
                hw.size(), hw.countKind(qcir::OpKind::Cnot),
                hw.depth());
    return 0;
}
