/**
 * @file
 * Targeting a custom device: define your own coupling graph and
 * native gate set, then compare 2QAN's placement strategies and the
 * baseline compilers on it.  Demonstrates the retargetability claim
 * of the paper (all permutation-aware passes run before gate
 * decomposition, so any gate set works).
 *
 * Build & run:  ./build/examples/custom_device
 */

#include <cstdio>
#include <random>

#include "baseline/sabre.h"
#include "baseline/tket_like.h"
#include "core/compiler.h"
#include "core/metrics.h"
#include "device/devices.h"
#include "ham/models.h"
#include "ham/trotter.h"

using namespace tqan;

int
main()
{
    // A hypothetical 18-qubit "ladder with rungs every two" device.
    graph::Graph g(18);
    for (int i = 0; i + 1 < 9; ++i) {
        g.addEdge(i, i + 1);
        g.addEdge(9 + i, 9 + i + 1);
    }
    for (int i = 0; i < 9; i += 2)
        g.addEdge(i, 9 + i);
    device::Topology topo("ladder18", g);
    std::printf("device %s: %d qubits, %d couplers\n",
                topo.name().c_str(), topo.numQubits(),
                static_cast<int>(topo.edges().size()));

    std::mt19937_64 rng(13);
    auto h = ham::nnnXY(14, rng);
    qcir::Circuit step = ham::trotterStep(h, 1.0);

    std::printf("\nXY(14) on ladder18, iSWAP gate set\n");
    std::printf("%-22s %6s %8s %8s %8s\n", "configuration", "swaps",
                "dressed", "iSWAPs", "depth2q");

    for (auto mk : {core::MapperKind::Tabu, core::MapperKind::Anneal,
                    core::MapperKind::Greedy,
                    core::MapperKind::Line}) {
        core::CompilerOptions opt;
        opt.mapper = mk;
        opt.seed = 99;
        core::TqanCompiler comp(topo, opt);
        auto res = comp.compile(step);
        auto m = core::computeMetrics(res.sched, step,
                                      device::GateSet::ISwap);
        const char *name =
            mk == core::MapperKind::Tabu     ? "2QAN (tabu QAP)"
            : mk == core::MapperKind::Anneal ? "2QAN (annealed QAP)"
            : mk == core::MapperKind::Greedy ? "2QAN (greedy place)"
                                             : "2QAN (line place)";
        std::printf("%-22s %6d %8d %8d %8d\n", name, m.swaps,
                    m.dressed, m.native2q, m.depth2q);
    }

    {
        std::mt19937_64 r2(1);
        auto unified = qcir::unifySamePairInteractions(step);
        auto r = baseline::sabreCompile(unified, topo, r2);
        auto m = core::computeCircuitMetrics(r.deviceCircuit, step,
                                             device::GateSet::ISwap);
        std::printf("%-22s %6d %8d %8d %8d\n", "SABRE (qiskit-like)",
                    r.swapCount, 0, m.native2q, m.depth2q);
        auto rt = baseline::tketLikeCompile(unified, topo, r2);
        auto mt = core::computeCircuitMetrics(
            rt.deviceCircuit, step, device::GateSet::ISwap);
        std::printf("%-22s %6d %8d %8d %8d\n", "slice (tket-like)",
                    rt.swapCount, 0, mt.native2q, mt.depth2q);
    }
    return 0;
}
