/**
 * @file
 * Trotterized Heisenberg dynamics on hardware: simulate the time
 * evolution of a staggered-magnetization observable on an 8-qubit
 * Heisenberg chain, compiled to a grid device with 2QAN.
 *
 * Demonstrates the paper's multi-step workflow (Sec. V-D): compile
 * the first Trotter step once, reverse the two-qubit order for even
 * steps, and chain the circuits -- both the compiled and the ideal
 * (all-to-all) Trotterization are valid product formulas, differing
 * only in term order, so their observables agree to the Trotter
 * error.
 *
 * Build & run:  ./build/examples/heisenberg_dynamics
 */

#include <cstdio>
#include <random>

#include "core/compiler.h"
#include "device/devices.h"
#include "ham/models.h"
#include "ham/trotter.h"
#include "sim/statevector.h"

using namespace tqan;

namespace {

/** <Z_q> under a statevector. */
double
expectZ(const sim::Statevector &psi, int q)
{
    double v = 0.0;
    for (std::uint64_t b = 0; b < psi.dim(); ++b) {
        double p = psi.probability(b);
        v += ((b >> q) & 1) ? -p : p;
    }
    return v;
}

} // namespace

int
main()
{
    const int n = 8;
    const double total_t = 1.6;
    const int steps = 8;

    std::mt19937_64 rng(21);
    ham::TwoLocalHamiltonian h = ham::nnnHeisenberg(n, rng);

    // Compile one step to a 3x3 grid device.
    core::CompilerOptions opt;
    opt.seed = 5;
    core::TqanCompiler compiler(device::grid(3, 3), opt);
    qcir::Circuit step =
        ham::trotterStep(h, total_t / steps);
    auto res = compiler.compile(step);
    qcir::Circuit fwd = res.sched.deviceCircuit;
    qcir::Circuit rev = fwd.reversedTwoQubitOrder();
    std::printf("compiled step: %d 2q unitaries, %d SWAPs (%d "
                "dressed)\n",
                fwd.twoQubitCount(), res.sched.swapCount,
                res.sched.dressedCount);

    // Initial state: domain wall |11110000> (logical).
    sim::Statevector ideal(n);
    sim::Statevector device(9);
    for (int q = 0; q < n / 2; ++q) {
        ideal.applyPauli(q, 'X');
        device.applyPauli(res.sched.initialMap[q], 'X');
    }

    std::printf("\n step   <Z_0> ideal-order   <Z_0> compiled\n");
    qcir::Circuit ideal_step = step;
    qcir::Circuit ideal_rev = step.reversedTwoQubitOrder();
    auto inv = qap::invertPlacement(res.sched.initialMap, 9);
    for (int k = 0; k < steps; ++k) {
        ideal.applyCircuit(k % 2 == 0 ? ideal_step : ideal_rev);
        const qcir::Circuit &c = k % 2 == 0 ? fwd : rev;
        device.applyCircuit(c);
        // Track where logical qubit 0 lives after the SWAPs.
        for (const auto &o : c.ops())
            if (o.isSwapLike())
                std::swap(inv[o.q0], inv[o.q1]);
        int dev_q0 = -1;
        for (int dq = 0; dq < 9; ++dq)
            if (inv[dq] == 0)
                dev_q0 = dq;
        std::printf("  %2d     %+.4f            %+.4f\n", k + 1,
                    expectZ(ideal, 0), expectZ(device, dev_q0));
    }
    std::printf("\nBoth columns are valid Trotterizations of the "
                "same H; they agree up to the Trotter error of the "
                "permuted term order.\n");
    return 0;
}
