/**
 * @file
 * tqanc -- command-line front end of the tqan compiler.
 *
 * Compiles a 2-local Hamiltonian (text format, see ham/parser.h) for
 * a target device and prints the compilation metrics; optionally
 * emits the decomposed circuit as OpenQASM 2.0.
 *
 * Usage:
 *   tqanc <hamiltonian-file|-> [options]
 *     --device NAME     montreal | sycamore | aspen | manhattan |
 *                       line:N | grid:RxC   (default: montreal)
 *     --gateset G       cnot | cz | iswap | syc (default: cnot)
 *     --time T          Trotter-step time (default 1.0)
 *     --seed S          RNG seed (default 7)
 *     --mapper M        tabu | anneal | greedy | line | identity
 *     --noise-aware     synthetic-calibration noise-aware placement
 *     --no-unify        disable SWAP-unitary unifying
 *     --generic-sched   use the order-respecting scheduler
 *     --qasm            print the decomposed circuit (CNOT/CZ only)
 *
 * Example:
 *   echo 'qubits 4
 *         pair 0 1 0 0 0.7
 *         pair 1 2 0 0 0.7
 *         pair 2 3 0 0 0.7
 *         pair 0 3 0 0 0.7' | tqanc - --device line:5 --qasm
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/compiler.h"
#include "core/metrics.h"
#include "decomp/pass.h"
#include "device/devices.h"
#include "ham/parser.h"
#include "ham/trotter.h"
#include "qcir/qasm.h"

using namespace tqan;

namespace {

device::Topology
deviceByName(const std::string &name)
{
    if (name == "montreal")
        return device::montreal27();
    if (name == "sycamore")
        return device::sycamore54();
    if (name == "aspen")
        return device::aspen16();
    if (name == "manhattan")
        return device::manhattan65();
    if (name.rfind("line:", 0) == 0)
        return device::line(std::stoi(name.substr(5)));
    if (name.rfind("grid:", 0) == 0) {
        auto body = name.substr(5);
        auto x = body.find('x');
        if (x == std::string::npos)
            throw std::runtime_error("grid:RxC expected");
        return device::grid(std::stoi(body.substr(0, x)),
                            std::stoi(body.substr(x + 1)));
    }
    throw std::runtime_error("unknown device '" + name + "'");
}

device::GateSet
gateSetByName(const std::string &name)
{
    if (name == "cnot")
        return device::GateSet::Cnot;
    if (name == "cz")
        return device::GateSet::Cz;
    if (name == "iswap")
        return device::GateSet::ISwap;
    if (name == "syc")
        return device::GateSet::Syc;
    throw std::runtime_error("unknown gate set '" + name + "'");
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: tqanc <hamiltonian-file|-> [--device D] "
                 "[--gateset G] [--time T] [--seed S] [--mapper M] "
                 "[--noise-aware] [--no-unify] [--generic-sched] "
                 "[--qasm]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    std::string input = argv[1];
    std::string dev = "montreal", gs_name = "cnot",
                mapper = "tabu";
    double t = 1.0;
    std::uint64_t seed = 7;
    bool noise_aware = false, no_unify = false,
         generic_sched = false, qasm = false;

    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                throw std::runtime_error("missing value for " + a);
            return argv[++i];
        };
        try {
            if (a == "--device")
                dev = next();
            else if (a == "--gateset")
                gs_name = next();
            else if (a == "--time")
                t = std::stod(next());
            else if (a == "--seed")
                seed = std::stoull(next());
            else if (a == "--mapper")
                mapper = next();
            else if (a == "--noise-aware")
                noise_aware = true;
            else if (a == "--no-unify")
                no_unify = true;
            else if (a == "--generic-sched")
                generic_sched = true;
            else if (a == "--qasm")
                qasm = true;
            else
                return usage();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "tqanc: %s\n", e.what());
            return 2;
        }
    }

    try {
        ham::TwoLocalHamiltonian h = [&]() {
            if (input == "-")
                return ham::parseHamiltonian(std::cin);
            std::ifstream f(input);
            if (!f)
                throw std::runtime_error("cannot open " + input);
            return ham::parseHamiltonian(f);
        }();

        device::Topology topo = deviceByName(dev);
        device::GateSet gs = gateSetByName(gs_name);

        core::CompilerOptions opt;
        opt.seed = seed;
        opt.unifySwaps = !no_unify;
        opt.hybridSchedule = !generic_sched;
        if (mapper == "tabu")
            opt.mapper = core::MapperKind::Tabu;
        else if (mapper == "anneal")
            opt.mapper = core::MapperKind::Anneal;
        else if (mapper == "greedy")
            opt.mapper = core::MapperKind::Greedy;
        else if (mapper == "line")
            opt.mapper = core::MapperKind::Line;
        else if (mapper == "identity")
            opt.mapper = core::MapperKind::Identity;
        else
            return usage();
        if (noise_aware) {
            std::mt19937_64 nrng(seed ^ 0xCA11B8A7Eull);
            opt.noiseMap = std::make_shared<device::NoiseMap>(
                device::NoiseMap::synthetic(topo, nrng));
        }

        core::TqanCompiler compiler(topo, opt);
        qcir::Circuit step = ham::trotterStep(h, t);
        auto res = compiler.compile(step);
        auto m = core::computeMetrics(res.sched, step, gs);

        std::fprintf(stderr,
                     "tqanc: %d qubits -> %s (%s)\n"
                     "  swaps          %d (dressed %d)\n"
                     "  native 2q      %d (NoMap %d, overhead %d)\n"
                     "  2q depth       %d (NoMap %d)\n"
                     "  all-gate depth %d (NoMap %d)\n"
                     "  pass times     map %.1f ms, route %.2f ms, "
                     "sched %.2f ms\n",
                     h.numQubits(), topo.name().c_str(),
                     device::gateSetName(gs).c_str(), m.swaps,
                     m.dressed, m.native2q, m.native2qNoMap,
                     m.gateOverhead(), m.depth2q, m.depth2qNoMap,
                     m.depthAll, m.depthAllNoMap,
                     res.mappingSeconds * 1e3,
                     res.routingSeconds * 1e3,
                     res.schedulingSeconds * 1e3);

        if (qasm) {
            qcir::Circuit hw =
                gs == device::GateSet::Cz
                    ? decomp::decomposeToCz(res.sched.deviceCircuit)
                    : decomp::decomposeToCnot(
                          res.sched.deviceCircuit);
            std::cout << qcir::toQasm(hw);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tqanc: error: %s\n", e.what());
        return 1;
    }
    return 0;
}
