/**
 * @file
 * tqanc -- command-line front end of the tqan compiler.
 *
 * Compiles a 2-local Hamiltonian (text format, see ham/parser.h) for
 * a target device through any registered compiler backend and prints
 * the compilation metrics; optionally emits the decomposed circuit
 * as OpenQASM 2.0.
 *
 * Example:
 *   echo 'qubits 4
 *         pair 0 1 0 0 0.7
 *         pair 1 2 0 0 0.7
 *         pair 2 3 0 0 0.7
 *         pair 0 3 0 0 0.7' | tqanc - --device line:5 --qasm
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/backend.h"
#include "core/compiler.h"
#include "core/metrics.h"
#include "core/router_registry.h"
#include "core/profile.h"
#include "robust/fault.h"
#include "simd/dispatch.h"
#include "decomp/pass.h"
#include "device/devices.h"
#include "ham/parser.h"
#include "ham/trotter.h"
#include "qap/mapper.h"
#include "qcir/qasm.h"

using namespace tqan;

namespace {

std::string
joined(const std::vector<std::string> &names)
{
    std::string s;
    for (const auto &n : names)
        s += (s.empty() ? "" : " | ") + n;
    return s;
}

void
printHelp(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: tqanc <hamiltonian-file|-> [options]\n"
        "\n"
        "Compile a 2-local Hamiltonian (see ham/parser.h for the\n"
        "text format; '-' reads stdin) and print the compilation\n"
        "metrics.\n"
        "\n"
        "options:\n"
        "  --device NAME     montreal | sycamore | aspen | manhattan\n"
        "                    | line:N | ring:N | grid:RxC\n"
        "                    (default montreal)\n"
        "  --gateset G       cnot | cz | iswap | syc (default cnot)\n"
        "  --pipeline B      compiler backend: %s\n"
        "                    (default 2qan)\n"
        "  --time T          Trotter-step time (default 1.0)\n"
        "  --seed S          RNG seed (default 7)\n"
        "  --qasm            print the decomposed circuit "
        "(CNOT/CZ only)\n"
        "  --profile         print a wall-time profile (per pass,\n"
        "                    per kernel) to stderr after compiling\n"
        "  --version         print the version, detected CPU caps\n"
        "                    and per-kernel SIMD dispatch, then "
        "exit\n"
        "  --help            show this help and exit\n"
        "\n"
        "2qan-pipeline options (rejected for other backends):\n"
        "  --jobs N          worker threads for the mapper trials;\n"
        "                    results are identical for every N\n"
        "  --mapper M        placement strategy: %s\n"
        "  --router R        routing strategy: %s\n"
        "                    (default greedy)\n"
        "  --trials K        randomized mapping trials (default 5)\n"
        "  --noise-aware     synthetic-calibration noise-aware "
        "placement\n"
        "  --no-unify        disable SWAP-unitary unifying\n"
        "  --generic-sched   use the order-respecting scheduler\n",
        joined(core::backendNames()).c_str(),
        joined(qap::mapperNames()).c_str(),
        joined(core::routerNames()).c_str());
}

core::MapperKind
mapperByName(const std::string &name)
{
    const std::pair<const char *, core::MapperKind> kinds[] = {
        {"tabu", core::MapperKind::Tabu},
        {"anneal", core::MapperKind::Anneal},
        {"greedy", core::MapperKind::Greedy},
        {"line", core::MapperKind::Line},
        {"identity", core::MapperKind::Identity},
    };
    for (const auto &[n, k] : kinds)
        if (name == n)
            return k;
    throw std::runtime_error("unknown mapper '" + name +
                             "' (expected " +
                             joined(qap::mapperNames()) + ")");
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            printHelp(stdout);
            return 0;
        }
        if (std::strcmp(argv[i], "--version") == 0) {
            std::fprintf(stdout, "tqanc %s\n%s", TQAN_VERSION,
                         simd::dispatchSummary().c_str());
            return 0;
        }
    }
    if (argc < 2) {
        printHelp(stderr);
        return 2;
    }

    std::string input = argv[1];
    std::string dev = "montreal", gs_name = "cnot", mapper = "tabu",
                router = "greedy", pipeline = "2qan";
    double t = 1.0;
    std::uint64_t seed = 7;
    int jobs = 1, trials = 5;
    bool noise_aware = false, no_unify = false,
         generic_sched = false, qasm = false, profile = false;
    /** 2QAN-only options the user set explicitly, so selecting a
     * baseline pipeline can reject them instead of silently ignoring
     * them (wrong ablation conclusions otherwise). */
    std::vector<std::string> tqan_only;

    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                throw std::runtime_error("missing value for " + a);
            return argv[++i];
        };
        try {
            if (a == "--device")
                dev = next();
            else if (a == "--gateset")
                gs_name = next();
            else if (a == "--pipeline") {
                // Validate at parse time, like unknown flags: a typo
                // should not survive until the compile starts.
                pipeline = next();
                core::backendByName(pipeline);
            } else if (a == "--time")
                t = std::stod(next());
            else if (a == "--seed")
                seed = std::stoull(next());
            else if (a == "--jobs") {
                jobs = std::stoi(next());
                tqan_only.push_back(a);
            } else if (a == "--mapper") {
                mapper = next();
                tqan_only.push_back(a);
            } else if (a == "--router") {
                router = next();
                core::routerByName(router);
                tqan_only.push_back(a);
            } else if (a == "--trials") {
                trials = std::stoi(next());
                tqan_only.push_back(a);
            } else if (a == "--noise-aware") {
                noise_aware = true;
                tqan_only.push_back(a);
            } else if (a == "--no-unify") {
                no_unify = true;
                tqan_only.push_back(a);
            } else if (a == "--generic-sched") {
                generic_sched = true;
                tqan_only.push_back(a);
            } else if (a == "--qasm")
                qasm = true;
            else if (a == "--profile")
                profile = true;
            else
                throw std::runtime_error(
                    "unknown option '" + a +
                    "' (run 'tqanc --help' for the option list)");
        } catch (const std::exception &e) {
            std::fprintf(stderr, "tqanc: %s\n", e.what());
            return 2;
        }
    }
    if (pipeline != "2qan" && !tqan_only.empty()) {
        std::fprintf(stderr,
                     "tqanc: option '%s' only applies to the 2qan "
                     "pipeline (got --pipeline %s)\n",
                     tqan_only.front().c_str(), pipeline.c_str());
        return 2;
    }

    core::profile::setEnabled(profile);
    // A TQAN_FAULT plan changes behavior by design; make sure it is
    // never active by accident.
    if (robust::faultPlanArmed())
        std::fprintf(stderr, "tqanc: fault plan armed: %s\n",
                     robust::faultPlanSummary().c_str());

    try {
        ham::TwoLocalHamiltonian h = [&]() {
            if (input == "-")
                return ham::parseHamiltonian(std::cin);
            std::ifstream f(input);
            if (!f)
                throw std::runtime_error("cannot open " + input);
            return ham::parseHamiltonian(f);
        }();

        device::Topology topo = device::deviceByName(dev);
        device::GateSet gs = device::gateSetByName(gs_name);

        core::CompileJob job;
        job.hamiltonian = &h;
        job.time = t;
        job.options.seed = seed;
        job.options.jobs = jobs;
        job.options.mapperTrials = trials;
        job.options.router.unifySwaps = !no_unify;
        job.options.router.name = router;
        job.options.hybridSchedule = !generic_sched;
        job.options.mapper = mapperByName(mapper);
        if (noise_aware) {
            std::mt19937_64 nrng(seed ^ 0xCA11B8A7Eull);
            job.options.noiseMap =
                std::make_shared<device::NoiseMap>(
                    device::NoiseMap::synthetic(topo, nrng));
        }

        const core::CompilerBackend &backend =
            core::backendByName(pipeline);
        qcir::Circuit step = ham::trotterStep(h, t);
        job.step = &step;
        auto res = backend.compile(job, topo);
        auto m = backend.metrics(res, step, gs);

        std::fprintf(stderr,
                     "tqanc: %d qubits -> %s (%s, %s)\n"
                     "  swaps          %d (dressed %d)\n"
                     "  native 2q      %d (NoMap %d, overhead %d)\n"
                     "  2q depth       %d (NoMap %d)\n"
                     "  all-gate depth %d (NoMap %d)\n",
                     h.numQubits(), topo.name().c_str(),
                     device::gateSetName(gs).c_str(),
                     backend.name().c_str(), m.swaps, m.dressed,
                     m.native2q, m.native2qNoMap, m.gateOverhead(),
                     m.depth2q, m.depth2qNoMap, m.depthAll,
                     m.depthAllNoMap);
        for (const auto &pt : res.passTimes)
            std::fprintf(stderr, "  pass %-10s %8.2f ms\n",
                         pt.pass.c_str(), pt.seconds * 1e3);

        if (qasm) {
            qcir::Circuit hw =
                gs == device::GateSet::Cz
                    ? decomp::decomposeToCz(res.sched.deviceCircuit)
                    : decomp::decomposeToCnot(
                          res.sched.deviceCircuit);
            std::cout << qcir::toQasm(hw);
        }

        if (profile) {
            // ISA header so profile rows (labelled per ISA) are
            // attributable to the hardware path that produced them.
            std::fprintf(stderr, "profile: simd=%s caps=[%s]\n",
                         simd::activeIsaName(),
                         simd::hostCaps().str().c_str());
            std::fputs(core::profile::report().c_str(), stderr);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tqanc: error: %s\n", e.what());
        return 1;
    }
    return 0;
}
