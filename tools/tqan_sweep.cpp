/**
 * @file
 * tqan-sweep -- batch sweep runner.
 *
 * Expands a declarative sweep spec (or a built-in preset) into a
 * batch of compilation jobs, runs them on the BatchCompiler thread
 * pool and prints one CSV/JSON row per job.  The paper's whole
 * result grid reproduces with one command:
 *
 *   tqan-sweep --preset table1_table2 --jobs 8 --tables
 *
 * prints the Table I/II reduction grid; `--preset figures` prints
 * the Fig. 7/8/9 rows.  Results are bit-identical for every --jobs
 * value (each job derives its own seed).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/sweep.h"

using namespace tqan;

namespace {

std::string
joined(const std::vector<std::string> &names, const char *sep)
{
    std::string s;
    for (const auto &n : names)
        s += (s.empty() ? "" : sep) + n;
    return s;
}

void
printHelp(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: tqan-sweep <spec-file|-> [options]\n"
        "       tqan-sweep --preset NAME [options]\n"
        "\n"
        "Expand a sweep spec into (benchmark x size x instance x\n"
        "device x backend) compilation jobs, run them on a thread\n"
        "pool and print one row per job.  Rows are bit-identical\n"
        "for every --jobs value.\n"
        "\n"
        "options:\n"
        "  --preset NAME     built-in sweep: %s\n"
        "  --jobs N          batch worker threads (default 1)\n"
        "  --format F        csv | json (default csv)\n"
        "  --tables          also print the Table I/II aggregate\n"
        "                    grid (each baseline vs 2qan)\n"
        "  --tables-only     print only the aggregate grid\n"
        "  --spec-help       describe the sweep-spec format\n"
        "  --help            show this help and exit\n",
        joined(core::sweepPresetNames(), " | ").c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specFile, preset, format = "csv";
    int jobs = 1;
    bool tables = false, tablesOnly = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "tqan-sweep: missing value for %s\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printHelp(stdout);
            return 0;
        } else if (a == "--spec-help") {
            std::fputs(core::sweepSpecHelp().c_str(), stdout);
            return 0;
        } else if (a == "--preset") {
            preset = next();
        } else if (a == "--jobs") {
            jobs = std::atoi(next().c_str());
        } else if (a == "--format") {
            format = next();
        } else if (a == "--tables") {
            tables = true;
        } else if (a == "--tables-only") {
            tables = tablesOnly = true;
        } else if (!a.empty() && a[0] == '-' && a != "-") {
            std::fprintf(stderr,
                         "tqan-sweep: unknown option '%s' (run "
                         "'tqan-sweep --help')\n",
                         a.c_str());
            return 2;
        } else if (specFile.empty()) {
            specFile = a;
        } else {
            std::fprintf(stderr,
                         "tqan-sweep: more than one spec file\n");
            return 2;
        }
    }
    if (format != "csv" && format != "json") {
        std::fprintf(stderr,
                     "tqan-sweep: bad --format '%s' (csv | json)\n",
                     format.c_str());
        return 2;
    }
    if (preset.empty() == specFile.empty()) {
        std::fprintf(stderr, "tqan-sweep: need a spec file or "
                             "--preset, not both or neither\n");
        printHelp(stderr);
        return 2;
    }
    if (jobs < 1) {
        std::fprintf(stderr, "tqan-sweep: --jobs must be >= 1\n");
        return 2;
    }

    try {
        core::SweepSpec spec;
        if (!preset.empty()) {
            spec = core::sweepPreset(preset);
        } else if (specFile == "-") {
            spec = core::parseSweepSpec(std::cin);
        } else {
            std::ifstream f(specFile);
            if (!f)
                throw std::runtime_error("cannot open " + specFile);
            spec = core::parseSweepSpec(f);
        }

        core::BatchCompiler bc({jobs});
        std::vector<core::SweepRow> rows = core::runSweep(spec, bc);

        if (!tablesOnly) {
            if (format == "csv")
                std::printf("%s\n", core::sweepCsvHeader().c_str());
            for (const auto &row : rows)
                std::printf("%s\n",
                            (format == "csv" ? core::toCsv(row)
                                             : core::toJson(row))
                                .c_str());
        }

        int failed = 0;
        for (const auto &row : rows)
            if (!row.ok()) {
                ++failed;
                std::fprintf(stderr,
                             "tqan-sweep: %s/%s/%s n=%d i=%d "
                             "failed: %s\n",
                             row.benchmark.c_str(),
                             row.device.c_str(),
                             row.backend.c_str(), row.nqubits,
                             row.instance, row.error.c_str());
            }

        if (tables) {
            // Every non-reference backend in the sweep is a
            // baseline; vs_tket_like is the paper's Table I,
            // vs_qiskit_sabre its Table II.
            std::vector<std::string> baselines;
            for (const auto &row : rows)
                if (row.backend != "2qan" &&
                    std::find(baselines.begin(), baselines.end(),
                              row.backend) == baselines.end())
                    baselines.push_back(row.backend);
            std::printf("%s\n",
                        core::sweepTableCsvHeader().c_str());
            for (const auto &t :
                 core::aggregateTables(rows, "2qan", baselines))
                std::printf("%s\n", core::toCsv(t).c_str());
        }
        return failed ? 1 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tqan-sweep: error: %s\n", e.what());
        return 1;
    }
}
