/**
 * @file
 * tqan-sweep -- batch sweep runner.
 *
 * Expands a declarative sweep spec (or a built-in preset) into a
 * batch of compilation jobs, runs them on the BatchCompiler thread
 * pool and prints one CSV/JSON row per job.  The paper's whole
 * result grid reproduces with one command:
 *
 *   tqan-sweep --preset table1_table2 --jobs 8 --tables
 *
 * prints the Table I/II reduction grid; `--preset figures` prints
 * the Fig. 7/8/9 rows.  Results are bit-identical for every --jobs
 * value (each job derives its own seed).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/env.h"
#include "core/profile.h"
#include "core/router_registry.h"
#include "core/sweep.h"
#include "robust/fault.h"
#include "robust/runner.h"
#include "simd/dispatch.h"

using namespace tqan;

namespace {

std::string
joined(const std::vector<std::string> &names, const char *sep)
{
    std::string s;
    for (const auto &n : names)
        s += (s.empty() ? "" : sep) + n;
    return s;
}

/** Strict integer flag parse: rejects trailing garbage instead of
 * silently truncating like atoi ("--warmup two" must not mean 0). */
int
intFlag(const std::string &flag, const std::string &value)
{
    try {
        size_t used = 0;
        int v = std::stoi(value, &used);
        if (used == value.size())
            return v;
    } catch (const std::exception &) {
    }
    std::fprintf(stderr, "tqan-sweep: bad integer '%s' for %s\n",
                 value.c_str(), flag.c_str());
    std::exit(2);
}

double
doubleFlag(const std::string &flag, const std::string &value)
{
    try {
        size_t used = 0;
        double v = std::stod(value, &used);
        if (used == value.size())
            return v;
    } catch (const std::exception &) {
    }
    std::fprintf(stderr, "tqan-sweep: bad number '%s' for %s\n",
                 value.c_str(), flag.c_str());
    std::exit(2);
}

void
reportCampaign(const core::CampaignTallies &t,
               const std::string &checkpoint)
{
    if (t.retried || t.restored)
        std::fprintf(stderr,
                     "tqan-sweep: campaign: %llu shards restored "
                     "from checkpoint, %llu retries\n",
                     static_cast<unsigned long long>(t.restored),
                     static_cast<unsigned long long>(t.retried));
    if (t.quarantined)
        std::fprintf(stderr,
                     "tqan-sweep: %llu shards quarantined after "
                     "retries (their rows carry errors)\n",
                     static_cast<unsigned long long>(t.quarantined));
    if (t.interrupted)
        std::fprintf(
            stderr,
            "tqan-sweep: campaign interrupted with %llu shards "
            "left; resume with --resume %s\n",
            static_cast<unsigned long long>(t.skipped),
            checkpoint.empty() ? "FILE (rerun with --checkpoint)"
                               : checkpoint.c_str());
}

void
printHelp(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: tqan-sweep <spec-file|-> [options]\n"
        "       tqan-sweep --preset NAME [options]\n"
        "\n"
        "Expand a sweep spec into (benchmark x size x instance x\n"
        "device x backend) compilation jobs, run them on a thread\n"
        "pool and print one row per job.  Rows are bit-identical\n"
        "for every --jobs value.\n"
        "\n"
        "options:\n"
        "  --preset NAME     built-in sweep: %s\n"
        "  --router R        route every job with this registered\n"
        "                    core router (%s); overrides the spec's\n"
        "                    `router =` line.  Backends that pin a\n"
        "                    router (2qan_rrr) are unaffected\n"
        "  --jobs N          batch worker threads (default 1)\n"
        "  --format F        csv | json (default csv)\n"
        "  --tables          also print the Table I/II aggregate\n"
        "                    grid (each baseline vs 2qan)\n"
        "  --tables-only     print only the aggregate grid\n"
        "  --verify          end-to-end verify every ok row\n"
        "                    (un-map + operator multiset + unitary\n"
        "                    oracle); mismatches fail the row.  The\n"
        "                    'verify' preset has this on already\n"
        "  --profile         print the profiling report (wall time\n"
        "                    per pass / backend) to stderr\n"
        "  --checkpoint FILE journal finished jobs here; SIGINT\n"
        "                    stops gracefully (exit 5) and --resume\n"
        "                    continues with byte-identical output\n"
        "  --resume FILE     resume from (and keep journaling to)\n"
        "                    FILE\n"
        "  --shard-deadline S  seconds before a hung job is requeued\n"
        "  --retries N       extra attempts before a job is\n"
        "                    quarantined (default 2)\n"
        "  --version         print the version, detected CPU caps\n"
        "                    and per-kernel SIMD dispatch, then "
        "exit\n"
        "  --spec-help       describe the sweep-spec format\n"
        "  --help            show this help and exit\n"
        "\n"
        "benchmark mode (perf-regression CI):\n"
        "  --bench           time the grid instead of printing rows:\n"
        "                    run it --warmup un-timed + --repeat\n"
        "                    timed times and write per-job medians\n"
        "                    as JSON to --out.  Specs may add\n"
        "                    simulation-throughput rows (`sim =`\n"
        "                    lines; the `fidelity` preset is\n"
        "                    sim-only and times the QAOA trajectory\n"
        "                    batch on the engine and the pre-engine\n"
        "                    reference simulator; the `simd` preset\n"
        "                    pairs dispatched vs scalar-forced rows\n"
        "                    for the SIMD speedup record)\n"
        "  --warmup N        un-timed warmup runs (default 1)\n"
        "  --repeat N        timed runs (default 5)\n"
        "  --out FILE        bench JSON path (default\n"
        "                    BENCH_pr4.json; '-' = stdout)\n"
        "  --baseline FILE   compare medians against a previous\n"
        "                    bench JSON; exit 3 when any job is\n"
        "                    slower than baseline * (1 + tolerance)\n"
        "                    (default 0.25, override with\n"
        "                    TQAN_BENCH_TOLERANCE; rows under 0.1 ms\n"
        "                    are never gated — clock jitter).\n"
        "                    Refresh with TQAN_UPDATE_BASELINE=1.\n",
        joined(core::sweepPresetNames(), " | ").c_str(),
        joined(core::routerNames(), " | ").c_str());
}

int
runBenchMode(const core::SweepSpec &spec, int jobs,
             const core::BenchOptions &bo, const std::string &outFile,
             const std::string &baselineFile,
             const robust::CampaignOptions &co)
{
    core::BatchCompiler bc({jobs});
    core::BenchCampaignOutcome outcome =
        core::runBenchCampaign(spec, bc, bo, co);
    reportCampaign(outcome.tallies, co.checkpoint);
    if (outcome.tallies.interrupted)
        // Resumable: no partial bench file, no baseline gate.
        return robust::kInterruptedExit;
    std::vector<core::BenchRow> &rows = outcome.rows;
    std::string json =
        core::benchJson(spec.experiment, bo, jobs, rows);

    if (outFile == "-") {
        std::fputs(json.c_str(), stdout);
    } else {
        std::ofstream out(outFile);
        if (!out)
            throw std::runtime_error("cannot write " + outFile);
        out << json;
        std::fprintf(stderr, "tqan-sweep: wrote %zu bench rows to %s\n",
                     rows.size(), outFile.c_str());
    }

    int failed = 0;
    for (const auto &row : rows)
        if (!row.ok()) {
            ++failed;
            std::fprintf(stderr, "tqan-sweep: %s failed: %s\n",
                         row.key().c_str(), row.error.c_str());
        }
    if (failed)
        return 1;
    if (baselineFile.empty())
        return 0;

    if (std::getenv("TQAN_UPDATE_BASELINE") != nullptr) {
        std::ofstream out(baselineFile);
        if (!out)
            throw std::runtime_error("cannot write " + baselineFile);
        out << json;
        std::fprintf(stderr,
                     "tqan-sweep: refreshed baseline %s; review "
                     "with git diff\n",
                     baselineFile.c_str());
        return 0;
    }

    std::ifstream in(baselineFile);
    if (!in)
        throw std::runtime_error(
            "cannot read baseline " + baselineFile +
            " (create it with TQAN_UPDATE_BASELINE=1)");
    std::vector<core::BenchRow> base = core::parseBenchJson(in);

    // Warn-and-fallback like TQAN_SIMD: a typo'd env knob must not
    // change behavior silently, but should not kill the run either.
    double tolerance =
        core::envDoubleOr("TQAN_BENCH_TOLERANCE", 0.25);
    std::vector<core::BenchRegression> regressions =
        core::compareBench(base, rows, tolerance);
    for (const auto &r : regressions)
        std::fprintf(stderr,
                     "tqan-sweep: PERF REGRESSION %s: %.3f ms -> "
                     "%.3f ms (x%.2f > x%.2f allowed)\n",
                     r.key.c_str(), r.baselineSeconds * 1e3,
                     r.currentSeconds * 1e3, r.ratio,
                     1.0 + tolerance);
    if (regressions.empty()) {
        std::fprintf(stderr,
                     "tqan-sweep: no perf regression vs %s "
                     "(tolerance %.0f%%, %zu rows compared)\n",
                     baselineFile.c_str(), tolerance * 100.0,
                     base.size());
        return 0;
    }
    std::fprintf(stderr,
                 "tqan-sweep: %zu of %zu rows regressed; refresh "
                 "the baseline with TQAN_UPDATE_BASELINE=1 if "
                 "intentional\n",
                 regressions.size(), rows.size());
    return 3;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specFile, preset, format = "csv", router;
    std::string outFile = "BENCH_pr4.json", baselineFile;
    int jobs = 1, warmup = 1, repeat = 5;
    bool tables = false, tablesOnly = false, bench = false,
         profile = false, verify = false;
    robust::CampaignOptions campaign;
    campaign.workers = 0;  // 0 = inherit --jobs (the batch width)

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "tqan-sweep: missing value for %s\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printHelp(stdout);
            return 0;
        } else if (a == "--version") {
            std::fprintf(stdout, "tqan-sweep %s\n%s", TQAN_VERSION,
                         simd::dispatchSummary().c_str());
            return 0;
        } else if (a == "--spec-help") {
            std::fputs(core::sweepSpecHelp().c_str(), stdout);
            return 0;
        } else if (a == "--preset") {
            preset = next();
        } else if (a == "--router") {
            router = next();
            try {
                core::routerByName(router);  // flag-parse validation
            } catch (const std::exception &e) {
                std::fprintf(stderr, "tqan-sweep: %s\n", e.what());
                return 2;
            }
        } else if (a == "--jobs") {
            jobs = intFlag(a, next());
        } else if (a == "--format") {
            format = next();
        } else if (a == "--tables") {
            tables = true;
        } else if (a == "--tables-only") {
            tables = tablesOnly = true;
        } else if (a == "--verify") {
            verify = true;
        } else if (a == "--bench") {
            bench = true;
        } else if (a == "--warmup") {
            warmup = intFlag(a, next());
        } else if (a == "--repeat") {
            repeat = intFlag(a, next());
        } else if (a == "--out") {
            outFile = next();
        } else if (a == "--baseline") {
            baselineFile = next();
        } else if (a == "--profile") {
            profile = true;
        } else if (a == "--checkpoint") {
            campaign.checkpoint = next();
        } else if (a == "--resume") {
            campaign.checkpoint = next();
            campaign.resume = true;
        } else if (a == "--shard-deadline") {
            campaign.shardDeadline = doubleFlag(a, next());
        } else if (a == "--retries") {
            campaign.retries = intFlag(a, next());
        } else if (!a.empty() && a[0] == '-' && a != "-") {
            std::fprintf(stderr,
                         "tqan-sweep: unknown option '%s' (run "
                         "'tqan-sweep --help')\n",
                         a.c_str());
            return 2;
        } else if (specFile.empty()) {
            specFile = a;
        } else {
            std::fprintf(stderr,
                         "tqan-sweep: more than one spec file\n");
            return 2;
        }
    }
    if (format != "csv" && format != "json") {
        std::fprintf(stderr,
                     "tqan-sweep: bad --format '%s' (csv | json)\n",
                     format.c_str());
        return 2;
    }
    if (preset.empty() == specFile.empty()) {
        std::fprintf(stderr, "tqan-sweep: need a spec file or "
                             "--preset, not both or neither\n");
        printHelp(stderr);
        return 2;
    }
    if (jobs < 1) {
        std::fprintf(stderr, "tqan-sweep: --jobs must be >= 1\n");
        return 2;
    }
    if (bench && (repeat < 1 || warmup < 0)) {
        std::fprintf(stderr, "tqan-sweep: --repeat must be >= 1 and "
                             "--warmup >= 0\n");
        return 2;
    }
    if (campaign.retries < 0 || campaign.shardDeadline < 0.0) {
        std::fprintf(stderr, "tqan-sweep: --retries must be >= 0 "
                             "and --shard-deadline >= 0\n");
        return 2;
    }

    core::profile::setEnabled(profile);
    if (robust::faultPlanArmed())
        std::fprintf(stderr, "tqan-sweep: fault plan armed: %s\n",
                     robust::faultPlanSummary().c_str());
    if (!campaign.checkpoint.empty())
        robust::installCampaignSignalHandlers();

    try {
        core::SweepSpec spec;
        if (!preset.empty()) {
            spec = core::sweepPreset(preset);
        } else if (specFile == "-") {
            spec = core::parseSweepSpec(std::cin);
        } else {
            std::ifstream f(specFile);
            if (!f)
                throw std::runtime_error("cannot open " + specFile);
            spec = core::parseSweepSpec(f);
        }
        if (verify)
            spec.verify = true;
        if (!router.empty())
            spec.router = router;

        if (bench) {
            int rc = runBenchMode(spec, jobs, {warmup, repeat},
                                  outFile, baselineFile, campaign);
            if (profile) {
                std::fprintf(stderr,
                             "profile: simd=%s caps=[%s]\n",
                             simd::activeIsaName(),
                             simd::hostCaps().str().c_str());
                std::fputs(core::profile::report().c_str(),
                           stderr);
            }
            return rc;
        }
        if (spec.devices.empty() && !spec.simCases.empty()) {
            std::fprintf(
                stderr,
                "tqan-sweep: this spec holds only simulation "
                "benchmark cases; run it with --bench\n");
            return 2;
        }

        core::BatchCompiler bc({jobs});
        core::SweepCampaignOutcome outcome =
            core::runSweepCampaign(spec, bc, campaign);
        reportCampaign(outcome.tallies, campaign.checkpoint);
        if (outcome.tallies.interrupted)
            // Resumable: print nothing partial; the journal holds
            // every finished row.
            return robust::kInterruptedExit;
        std::vector<core::SweepRow> &rows = outcome.rows;

        if (!tablesOnly) {
            if (format == "csv")
                std::printf("%s\n", core::sweepCsvHeader().c_str());
            for (const auto &row : rows)
                std::printf("%s\n",
                            (format == "csv" ? core::toCsv(row)
                                             : core::toJson(row))
                                .c_str());
        }

        int failed = 0;
        for (const auto &row : rows)
            if (!row.ok()) {
                ++failed;
                std::fprintf(stderr,
                             "tqan-sweep: %s/%s/%s n=%d i=%d "
                             "failed: %s\n",
                             row.benchmark.c_str(),
                             row.device.c_str(),
                             row.backend.c_str(), row.nqubits,
                             row.instance, row.error.c_str());
            }

        if (tables) {
            // Every non-reference backend in the sweep is a
            // baseline; vs_tket_like is the paper's Table I,
            // vs_qiskit_sabre its Table II.
            std::vector<std::string> baselines;
            for (const auto &row : rows)
                if (row.backend != "2qan" &&
                    std::find(baselines.begin(), baselines.end(),
                              row.backend) == baselines.end())
                    baselines.push_back(row.backend);
            std::printf("%s\n",
                        core::sweepTableCsvHeader().c_str());
            for (const auto &t :
                 core::aggregateTables(rows, "2qan", baselines))
                std::printf("%s\n", core::toCsv(t).c_str());
        }
        if (profile) {
            std::fprintf(stderr, "profile: simd=%s caps=[%s]\n",
                         simd::activeIsaName(),
                         simd::hostCaps().str().c_str());
            std::fputs(core::profile::report().c_str(), stderr);
        }
        return failed ? 1 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tqan-sweep: error: %s\n", e.what());
        return 1;
    }
}
