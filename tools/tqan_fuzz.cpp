/**
 * @file
 * tqan-fuzz -- cross-backend differential fuzz harness CLI.
 *
 * Draws randomized 2-local scenarios (testgen), compiles each with
 * every registered backend, and end-to-end verifies every result
 * (verify::checkCompilation: un-map, layout, operator multiset,
 * unitary oracle, decomposition re-verify).  Failing cases are
 * shrunk to minimal reproducers and written as replayable spec
 * files; --replay re-runs one.  --mutate proves the oracle itself:
 * it corrupts one gate of each verified circuit and reports the
 * detection rate (CI gates on >= 95%).
 *
 *   tqan-fuzz --iterations 500 --jobs 8          # the CI gate
 *   tqan-fuzz --iterations 100 --mutate 4        # oracle quality
 *   tqan-fuzz --replay fuzz-failures/case0.repro # one reproducer
 *
 * Seeding: --seed (or TQAN_FUZZ_SEED) fully determines every
 * scenario, compile and oracle draw; results are identical for any
 * --jobs value.
 *
 * Long campaigns are crash-safe: --checkpoint journals each finished
 * scenario shard, SIGINT/SIGTERM stop gracefully (exit 5 with a
 * resume hint), and --resume FILE replays the journal so the resumed
 * summary is byte-identical to an uninterrupted run.  --processes N
 * forks one worker per shard so a crashing shard costs a retry, not
 * the campaign.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/backend.h"
#include "core/env.h"
#include "robust/fault.h"
#include "robust/runner.h"
#include "verify/fuzz.h"

using namespace tqan;

namespace {

int
intFlag(const std::string &flag, const std::string &value)
{
    try {
        size_t used = 0;
        int v = std::stoi(value, &used);
        if (used == value.size())
            return v;
    } catch (const std::exception &) {
    }
    std::fprintf(stderr, "tqan-fuzz: bad integer '%s' for %s\n",
                 value.c_str(), flag.c_str());
    std::exit(2);
}

double
doubleFlag(const std::string &flag, const std::string &value)
{
    try {
        size_t used = 0;
        double v = std::stod(value, &used);
        if (used == value.size())
            return v;
    } catch (const std::exception &) {
    }
    std::fprintf(stderr, "tqan-fuzz: bad number '%s' for %s\n",
                 value.c_str(), flag.c_str());
    std::exit(2);
}

void
printHelp(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: tqan-fuzz [options]\n"
        "       tqan-fuzz --replay FILE [options]\n"
        "\n"
        "Randomized end-to-end correctness fuzzing: generator ->\n"
        "every registered backend -> equivalence checker.  Exit 0\n"
        "when every case verifies (and, with --mutate, the\n"
        "detection rate clears --min-detection); 1 on verification\n"
        "failures; 4 on a mutation-detection shortfall.\n"
        "\n"
        "options:\n"
        "  --iterations N    scenarios to draw (default 100)\n"
        "  --seed S          base seed (default $TQAN_FUZZ_SEED or 1)\n"
        "  --jobs N          scenario-parallel workers (default 1;\n"
        "                    results identical for any value)\n"
        "  --backends CSV    comma-separated backend subset\n"
        "                    (default: all registered)\n"
        "  --max-qubits N    circuit-size ceiling (default 9)\n"
        "  --min-qubits N    circuit-size floor (default 3)\n"
        "  --max-device N    device-size ceiling (default 11)\n"
        "  --clifford        draw only Clifford-restricted scenarios\n"
        "                    (exact stabilizer oracle at any scale;\n"
        "                    pair with --min-qubits 100 for the\n"
        "                    beyond-statevector leg)\n"
        "  --structured P    fraction of scenarios on grid/heavy-hex\n"
        "                    devices instead of random topologies\n"
        "                    (default 0)\n"
        "  --noise           attach calibration-style synthetic noise\n"
        "                    maps (heterogeneous coupler error rates)\n"
        "  --trials N        oracle trials per case (default 3)\n"
        "  --mutate M        mutation campaign: M corruptions per\n"
        "                    verified case (default 0 = off)\n"
        "  --min-detection P mutation detection gate in percent\n"
        "                    (default 95)\n"
        "  --no-shrink       keep failing scenarios unshrunk\n"
        "  --no-decomp       skip decomposition re-verification\n"
        "  --out DIR         write reproducers here (default\n"
        "                    fuzz-failures/)\n"
        "  --checkpoint FILE journal finished shards here; an\n"
        "                    interrupted campaign resumes from it\n"
        "  --resume FILE     resume from (and keep journaling to)\n"
        "                    FILE; the summary is byte-identical to\n"
        "                    an uninterrupted run\n"
        "  --processes N     fork one worker process per shard (at\n"
        "                    most N live); crashes cost one retry\n"
        "  --shard-deadline S  seconds before a hung shard is\n"
        "                    requeued (default: no deadline)\n"
        "  --retries N       extra attempts before a shard is\n"
        "                    quarantined (default 2)\n"
        "  --replay FILE     re-run one reproducer spec\n"
        "  --dump SEED       print the scenario a seed generates as\n"
        "                    a reproducer spec and exit\n"
        "  --verbose         per-failure detail on stderr\n"
        "  --help            this help\n");
}

} // namespace

int
main(int argc, char **argv)
{
    verify::FuzzOptions opt;
    // Strict parse with warn-and-fallback (stoull would accept
    // "7junk" as 7 silently; see core/env.h).
    opt.seed = core::envUint64Or("TQAN_FUZZ_SEED", 1);
    std::string outDir = "fuzz-failures";
    std::string replayFile, dumpSeed;
    double minDetection = 95.0;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "tqan-fuzz: missing value for %s\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printHelp(stdout);
            return 0;
        } else if (a == "--iterations") {
            opt.iterations = intFlag(a, next());
        } else if (a == "--seed") {
            try {
                opt.seed = std::stoull(next());
            } catch (const std::exception &) {
                std::fprintf(stderr, "tqan-fuzz: bad --seed\n");
                return 2;
            }
        } else if (a == "--jobs") {
            opt.jobs = intFlag(a, next());
        } else if (a == "--backends") {
            std::istringstream is(next());
            std::string tok;
            while (std::getline(is, tok, ','))
                if (!tok.empty())
                    opt.backends.push_back(tok);
        } else if (a == "--max-qubits") {
            opt.scenario.maxQubits = intFlag(a, next());
        } else if (a == "--min-qubits") {
            opt.scenario.minQubits = intFlag(a, next());
        } else if (a == "--max-device") {
            opt.scenario.maxDeviceQubits = intFlag(a, next());
        } else if (a == "--clifford") {
            opt.scenario.cliffordOnly = true;
        } else if (a == "--structured") {
            opt.scenario.structuredFraction = doubleFlag(a, next());
        } else if (a == "--noise") {
            opt.scenario.withNoise = true;
        } else if (a == "--trials") {
            opt.check.equivalence.trials = intFlag(a, next());
        } else if (a == "--mutate") {
            opt.mutationsPerCase = intFlag(a, next());
        } else if (a == "--min-detection") {
            std::string v = next();
            try {
                size_t used = 0;
                minDetection = std::stod(v, &used);
                if (used != v.size())
                    throw std::invalid_argument(v);
            } catch (const std::exception &) {
                std::fprintf(stderr,
                             "tqan-fuzz: bad percentage '%s' for "
                             "--min-detection\n",
                             v.c_str());
                return 2;
            }
        } else if (a == "--checkpoint") {
            opt.campaign.checkpoint = next();
        } else if (a == "--resume") {
            opt.campaign.checkpoint = next();
            opt.campaign.resume = true;
        } else if (a == "--processes") {
            opt.campaign.processes = intFlag(a, next());
        } else if (a == "--shard-deadline") {
            opt.campaign.shardDeadline = doubleFlag(a, next());
        } else if (a == "--retries") {
            opt.campaign.retries = intFlag(a, next());
        } else if (a == "--no-shrink") {
            opt.shrink = false;
        } else if (a == "--no-decomp") {
            opt.check.checkDecompositions = false;
        } else if (a == "--out") {
            outDir = next();
        } else if (a == "--replay") {
            replayFile = next();
        } else if (a == "--dump") {
            dumpSeed = next();
        } else if (a == "--verbose") {
            verbose = true;
        } else {
            std::fprintf(stderr,
                         "tqan-fuzz: unknown option '%s' (run "
                         "'tqan-fuzz --help')\n",
                         a.c_str());
            return 2;
        }
    }
    if (opt.iterations < 1 || opt.jobs < 1 ||
        opt.campaign.processes < 0 || opt.campaign.retries < 0 ||
        opt.campaign.shardDeadline < 0.0 ||
        opt.scenario.minQubits < 1 ||
        opt.scenario.maxQubits < opt.scenario.minQubits ||
        opt.scenario.structuredFraction < 0.0 ||
        opt.scenario.structuredFraction > 1.0) {
        std::fprintf(stderr, "tqan-fuzz: bad option values\n");
        return 2;
    }
    if (opt.scenario.maxDeviceQubits < opt.scenario.maxQubits)
        opt.scenario.maxDeviceQubits = opt.scenario.maxQubits;

    try {
        for (const auto &b : opt.backends)
            core::backendByName(b);  // fail fast on typos

        if (!dumpSeed.empty()) {
            testgen::Scenario s = testgen::randomScenario(
                std::stoull(dumpSeed), opt.scenario);
            std::fputs(testgen::toSpec(s).c_str(), stdout);
            return 0;
        }
        if (!replayFile.empty()) {
            std::ifstream f(replayFile);
            if (!f) {
                std::fprintf(stderr, "tqan-fuzz: cannot open %s\n",
                             replayFile.c_str());
                return 2;
            }
            testgen::Scenario s = testgen::scenarioFromSpec(f);
            std::vector<verify::FuzzSkip> skips;
            auto failures = verify::runScenario(s, opt, &skips);
            // Skips are not failures, but an over-ceiling replay
            // must say WHICH oracle refused and why, not exit with
            // a generic error (or worse, a bad_alloc).
            for (const auto &sk : skips)
                std::fprintf(stderr,
                             "tqan-fuzz: %s: skipped -- %s\n",
                             sk.backend.c_str(), sk.reason.c_str());
            if (failures.empty()) {
                std::fprintf(stderr,
                             "tqan-fuzz: reproducer %s verifies "
                             "clean on every backend%s\n",
                             replayFile.c_str(),
                             skips.empty() ? ""
                                           : " that an oracle could "
                                             "decide");
                return 0;
            }
            for (const auto &fl : failures)
                std::fprintf(stderr, "tqan-fuzz: %s: %s\n",
                             fl.backend.c_str(), fl.error.c_str());
            return 1;
        }

        if (robust::faultPlanArmed())
            std::fprintf(stderr, "tqan-fuzz: fault plan armed: %s\n",
                         robust::faultPlanSummary().c_str());
        if (!opt.campaign.checkpoint.empty())
            robust::installCampaignSignalHandlers();

        verify::FuzzSummary sum = verify::runFuzz(opt);
        std::fprintf(stderr, "tqan-fuzz: %s\n",
                     verify::summaryLine(sum).c_str());

        if (sum.interrupted) {
            std::fprintf(
                stderr,
                "tqan-fuzz: campaign interrupted with %llu shards "
                "left; resume with --resume %s\n",
                static_cast<unsigned long long>(sum.skippedShards),
                opt.campaign.checkpoint.empty()
                    ? "FILE (rerun with --checkpoint)"
                    : opt.campaign.checkpoint.c_str());
            return robust::kInterruptedExit;
        }
        if (sum.quarantinedShards > 0)
            // Graceful degradation: the findings below cover every
            // shard that resolved; quarantined shards are reported,
            // not fatal.
            std::fprintf(
                stderr,
                "tqan-fuzz: %llu shards quarantined after retries "
                "(results cover the remaining shards)\n",
                static_cast<unsigned long long>(
                    sum.quarantinedShards));

        if (!sum.failures.empty()) {
            std::filesystem::create_directories(outDir);
            int idx = 0;
            for (const auto &f : sum.failures) {
                std::string path =
                    outDir + "/case" + std::to_string(idx++) +
                    "_seed" + std::to_string(f.scenarioSeed) + "_" +
                    f.backend + ".repro";
                std::ofstream out(path);
                out << f.reproducer;
                std::fprintf(stderr,
                             "tqan-fuzz: FAIL %s on %s -> %s\n",
                             f.scenarioName.c_str(),
                             f.backend.c_str(), path.c_str());
                if (verbose)
                    std::fprintf(stderr, "  %s\n",
                                 f.error.c_str());
            }
            return 1;
        }
        if (opt.mutationsPerCase > 0 &&
            100.0 * sum.detectionRate() < minDetection) {
            std::fprintf(stderr,
                         "tqan-fuzz: mutation detection %.1f%% is "
                         "below the %.1f%% gate\n",
                         100.0 * sum.detectionRate(), minDetection);
            return 4;
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tqan-fuzz: error: %s\n", e.what());
        return 1;
    }
}
