/**
 * @file
 * tqand -- the compile-service daemon (JSONL over stdin/stdout).
 *
 * Reads one JSON compile request per line, writes one JSON response
 * per line in request order, and keeps a content-addressed compile
 * cache in front of the BatchCompiler pool; with --cache PATH the
 * cache persists across restarts.  See src/service/service.h for the
 * protocol and README "Compile service" for examples.
 *
 *   printf '%s\n' \
 *     '{"type":"compile","id":"r1","ham":"qubits 2\npair 0 1 0 0 0.7\n","device":"line:3"}' \
 *     '{"type":"stats","id":"s"}' | tqand --cache /tmp/tqan.cache
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "robust/fault.h"
#include "service/service.h"
#include "simd/dispatch.h"

using namespace tqan;

namespace {

void
printHelp(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: tqand [options]\n"
        "\n"
        "Compile-service daemon: reads JSONL requests from stdin,\n"
        "writes JSONL responses to stdout (in request order) until\n"
        "EOF or a {\"type\":\"shutdown\"} request.  Request types:\n"
        "compile | stats | shutdown.\n"
        "\n"
        "options:\n"
        "  --jobs N          BatchCompiler pool width (default 1)\n"
        "  --cache PATH      persist the compile cache at PATH\n"
        "                    (default: in-memory only)\n"
        "  --queue N         admission-queue bound; overflow is\n"
        "                    rejected (default 64)\n"
        "  --deadline-ms D   default per-request queue deadline in\n"
        "                    ms, 0 = unlimited (default 0)\n"
        "  --stats           print a final stats line to stderr on\n"
        "                    exit\n"
        "  --version         print the version and exit\n"
        "  --help            show this help and exit\n");
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "tqand: %s\n", msg.c_str());
    std::exit(2);
}

std::string
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        die(std::string(argv[i]) + " needs a value");
    return argv[++i];
}

int
intArg(const std::string &flag, const std::string &value,
       int minValue)
{
    int v = 0;
    if (!service::parseI32(value, &v) || v < minValue)
        die(flag + " expects an integer >= " +
            std::to_string(minValue) + ", got '" + value + "'");
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServiceOptions opt;
    bool finalStats = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printHelp(stdout);
            return 0;
        }
        if (a == "--version") {
            std::printf("tqand %s (%s)\n", TQAN_VERSION,
                        simd::activeIsaName());
            return 0;
        }
        if (a == "--jobs") {
            opt.jobs = intArg(a, argValue(argc, argv, i), 1);
        } else if (a == "--cache") {
            opt.cachePath = argValue(argc, argv, i);
        } else if (a == "--queue") {
            opt.maxQueue = static_cast<std::size_t>(
                intArg(a, argValue(argc, argv, i), 1));
        } else if (a == "--deadline-ms") {
            std::string v = argValue(argc, argv, i);
            double d = 0.0;
            if (!service::parseF64(v, &d) || d < 0.0)
                die("--deadline-ms expects a number >= 0, got '" +
                    v + "'");
            opt.defaultDeadlineMs = d;
        } else if (a == "--stats") {
            finalStats = true;
        } else {
            die("unknown option '" + a + "' (try --help)");
        }
    }

    // A TQAN_FAULT plan silently active in a production daemon would
    // look like flaky hardware; announce it up front.
    if (robust::faultPlanArmed())
        std::fprintf(stderr, "tqand: fault plan armed: %s\n",
                     robust::faultPlanSummary().c_str());

    service::CompileService svc(opt);
    if (!svc.options().cachePath.empty()) {
        const auto &li = svc.cacheLoadInfo();
        if (li.rebuilt)
            std::fprintf(stderr,
                         "tqand: cache %s unrecognized, rebuilt "
                         "empty\n",
                         opt.cachePath.c_str());
        else if (li.droppedBytes)
            std::fprintf(stderr,
                         "tqand: cache %s: dropped %llu "
                         "unverifiable tail bytes, kept %llu "
                         "entries\n",
                         opt.cachePath.c_str(),
                         static_cast<unsigned long long>(
                             li.droppedBytes),
                         static_cast<unsigned long long>(
                             li.loadedEntries));
    }

    svc.serve(std::cin, std::cout);

    if (finalStats) {
        service::ServiceStats s = svc.stats();
        std::fprintf(stderr,
                     "tqand: requests=%llu hits=%llu misses=%llu "
                     "hit_rate=%.4f errors=%llu rejected=%llu "
                     "expired=%llu cache_entries=%llu "
                     "io_retries=%llu p50_ms=%.3f p99_ms=%.3f\n",
                     static_cast<unsigned long long>(s.requests),
                     static_cast<unsigned long long>(s.hits),
                     static_cast<unsigned long long>(s.misses),
                     s.hitRate(),
                     static_cast<unsigned long long>(s.errors),
                     static_cast<unsigned long long>(s.rejected),
                     static_cast<unsigned long long>(s.expired),
                     static_cast<unsigned long long>(
                         s.cacheEntries),
                     static_cast<unsigned long long>(s.ioRetries),
                     s.p50Ms, s.p99Ms);
    }
    return 0;
}
