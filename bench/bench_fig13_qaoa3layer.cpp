/**
 * @file
 * Paper Fig. 13 (appendix): 3-layer QAOA-REG-3 on IBMQ Montreal.
 * 2QAN compiles the first layer only and reverses the two-qubit
 * order for even layers (retargeting each layer's angles); the
 * baselines compile the whole 3-layer circuit.  The expected shape:
 * every compiler's overhead is ~3x its single-layer overhead, with
 * 2QAN lowest.
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

int
main(int argc, char **argv)
{
    printHeader();
    device::Topology topo = device::montreal27();
    auto angles = ham::qaoaFixedAngles(3);

    for (int n = 4; n <= 22; n += 2) {
        for (int inst = 0; inst < 10; ++inst) {
            std::mt19937_64 rng(
                instanceSeed(Family::QaoaReg3, n, inst));
            auto g = graph::randomRegularGraph(n, 3, rng);

            // Logical 3-layer circuit (for baselines and NoMap).
            qcir::Circuit full = qaoaMultiLayerStep(g, angles);

            // 2QAN: compile layer 1, chain scaled fwd/rev copies.
            auto layer1 = ham::trotterStep(
                ham::qaoaLayerHamiltonian(g, angles[0]), 1.0);
            core::CompileResult res;
            runCompiler("2qan", layer1, topo, device::GateSet::Cnot,
                    instanceSeed(Family::QaoaReg3, n, 500 + inst),
                    &res);
            qcir::Circuit tq3 = tqanMultiLayerCircuit(res, angles);
            auto mt = core::computeCircuitMetrics(
                tq3, full, device::GateSet::Cnot);
            mt.swaps = 3 * res.sched.swapCount;
            mt.dressed = 3 * res.sched.dressedCount;
            printRow("fig13", "QAOA_REG3_p3", topo.name(),
                     device::GateSet::Cnot, "2QAN", n, inst, mt);

            // Baselines on the full 3-layer circuit.
            for (const char *b :
                 {"qiskit_sabre", "tket_like", "ic_qaoa"}) {
                auto mb = runCompiler(
                    b, full, topo, device::GateSet::Cnot,
                    instanceSeed(Family::QaoaReg3, n, 600 + inst));
                printRow("fig13", "QAOA_REG3_p3", topo.name(),
                         device::GateSet::Cnot, b, n, inst, mb);
            }
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
