/**
 * @file
 * Paper Fig. 7: compilation of one-layer NNN Heisenberg / XY / Ising
 * and QAOA-REG-3 onto Google Sycamore (SYC gate set): SWAP count,
 * SYC count and SYC depth per compiler, plus the NoMap baseline
 * columns.  The registered google-benchmark timers cover the compile
 * passes (Sec. V-D).
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

void
BM_TqanCompile(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    device::Topology topo = device::sycamore54();
    std::mt19937_64 rng(instanceSeed(Family::NnnHeisenberg, n, 0));
    qcir::Circuit step = familyStep(Family::NnnHeisenberg, n, 0, rng);
    core::CompileResult res;
    for (auto _ : state) {
        auto m = runCompiler("2qan", step, topo, device::GateSet::Syc,
                         instanceSeed(Family::NnnHeisenberg, n, 1),
                         &res);
        benchmark::DoNotOptimize(m);
    }
    state.counters["swaps"] = res.sched.swapCount;
    state.counters["dressed"] = res.sched.dressedCount;
    state.counters["map_s"] = res.mappingSeconds;
    state.counters["route_s"] = res.routingSeconds;
    state.counters["sched_s"] = res.schedulingSeconds;
}

BENCHMARK(BM_TqanCompile)
    ->Arg(10)
    ->Arg(26)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    bool table_only = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--table-only")
            table_only = true;

    printHeader();
    runFigureSweep("fig7", "sycamore", /*gateset=*/"",
                   /*chainCap=*/50, /*qaoaCap=*/22,
                   /*withIcQaoa=*/false);

    if (!table_only) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }
    return 0;
}
