/**
 * @file
 * Paper Table III: circuit-size comparison with Paulihedral.
 *
 *  - Heisenberg-1D / 2D / 3D, 30 qubits, all-to-all connectivity
 *    (chain / 6x5 grid / 5x3x2 lattice interaction graphs -- the
 *    edge counts 29 / 49 / 59 reproduce the paper's 2QAN CNOT
 *    figures 87 / 147 / 177 at 3 CNOTs per pair).
 *  - QAOA-REG-4 / 8 / 12, 20 qubits, 10 instances, on the 65-qubit
 *    heavy-hex IBMQ Manhattan.
 *
 * Columns: CNOT count and all-gate depth for the Paulihedral-like
 * block-wise compiler and for 2QAN.
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

void
runHeisenberg(const char *name, const graph::Graph &interaction)
{
    std::mt19937_64 rng(0xface);
    auto h = ham::heisenbergOnGraph(interaction, rng);
    device::Topology topo = device::allToAll(30);

    // Paulihedral-like: block kernels in lexicographic order.
    qcir::Circuit step = ham::trotterStep(h, 1.0);
    core::CompileJob job;
    job.hamiltonian = &h;
    job.options.seed = 1;
    const auto &pl = core::backendByName("paulihedral_like");
    auto mp = pl.metrics(pl.compile(job, topo), step,
                         device::GateSet::Cnot);

    // 2QAN.
    auto mt = runCompiler("2qan", step, topo,
                          device::GateSet::Cnot, 2);

    std::printf("table3,%s,alltoall30,CNOT,paulihedral_like,30,0,"
                "%d,%d\n",
                name, mp.native2q, mp.depthAll);
    std::printf("table3,%s,alltoall30,CNOT,2QAN,30,0,%d,%d\n", name,
                mt.native2q, mt.depthAll);
    std::fflush(stdout);
}

void
runQaoaReg(int degree)
{
    device::Topology topo = device::manhattan65();
    long pl_gates = 0, pl_depth = 0, tq_gates = 0, tq_depth = 0;
    const int instances = 10;
    for (int inst = 0; inst < instances; ++inst) {
        std::mt19937_64 rng(0xabc0 + degree * 131 + inst);
        auto g = graph::randomRegularGraph(20, degree, rng);
        ham::TwoLocalHamiltonian h(20);
        for (const auto &[u, v] : g.edges())
            h.addPair(u, v, 0.0, 0.0, 0.35);
        for (int q = 0; q < 20; ++q)
            h.addField(q, ham::Axis::X, 0.2);

        qcir::Circuit step = ham::trotterStep(h, 1.0);
        core::CompileJob job;
        job.hamiltonian = &h;
        job.options.seed = inst;
        const auto &plb = core::backendByName("paulihedral_like");
        auto mp = plb.metrics(plb.compile(job, topo), step,
                              device::GateSet::Cnot);
        auto mt = runCompiler("2qan", step, topo,
                              device::GateSet::Cnot, 77 + inst);
        pl_gates += mp.native2q;
        pl_depth += mp.depthAll;
        tq_gates += mt.native2q;
        tq_depth += mt.depthAll;
    }
    std::printf("table3,QAOA_REG%d,manhattan65,CNOT,"
                "paulihedral_like,20,avg,%ld,%ld\n",
                degree, pl_gates / instances, pl_depth / instances);
    std::printf("table3,QAOA_REG%d,manhattan65,CNOT,2QAN,20,avg,"
                "%ld,%ld\n",
                degree, tq_gates / instances, tq_depth / instances);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("experiment,benchmark,device,gateset,compiler,"
                "nqubits,instance,cnots,depth\n");

    graph::Graph chain(30);
    for (int i = 0; i + 1 < 30; ++i)
        chain.addEdge(i, i + 1);
    runHeisenberg("Heisenberg_1D", chain);
    runHeisenberg("Heisenberg_2D", device::grid(6, 5).coupling());
    runHeisenberg("Heisenberg_3D", device::cube(5, 3, 2).coupling());

    runQaoaReg(4);
    runQaoaReg(8);
    runQaoaReg(12);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
