/**
 * @file
 * Ablation study of the 2QAN design choices (DESIGN.md Sec. 6; the
 * paper motivates each pass in Sec. III):
 *
 *  1. initial placement: Tabu QAP vs. annealing vs. greedy vs. line
 *     vs. identity,
 *  2. SWAP-unitary unifying on/off,
 *  3. hybrid ALAP scheduler vs. generic order-respecting scheduler,
 *  4. circuit-unitary unifying on/off.
 *
 * Run on the Fig. 9 workloads (Montreal, CNOT).
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

void
runConfig(const char *label, const core::CompilerOptions &opt,
          Family f, int n)
{
    device::Topology topo = device::montreal27();
    std::mt19937_64 rng(instanceSeed(f, n, 0));
    qcir::Circuit step = familyStep(f, n, 0, rng);
    core::TqanCompiler comp(topo, opt);
    auto res = comp.compile(step);
    auto m = core::computeMetrics(res.sched, step,
                                  device::GateSet::Cnot);
    printRow("ablation", familyName(f), topo.name(),
             device::GateSet::Cnot, label, n, 0, m);
}

/**
 * The circuit-unifying ablation must start from the *un-unified*
 * Pauli-term circuit (one single-axis exponential per term, e.g.
 * 3 ops per Heisenberg pair); the model builders already fold terms
 * per pair, which is precisely the pass under test.
 */
qcir::Circuit
unUnifiedStep(Family f, int n, std::mt19937_64 &rng)
{
    ham::TwoLocalHamiltonian h =
        f == Family::NnnHeisenberg ? ham::nnnHeisenberg(n, rng)
        : f == Family::NnnXY       ? ham::nnnXY(n, rng)
                                   : ham::nnnIsing(n, rng);
    qcir::Circuit c(n);
    for (const auto &term : h.pauliTerms()) {
        if (term.v < 0)
            continue;
        double x = term.axis == ham::Axis::X ? term.coeff : 0.0;
        double y = term.axis == ham::Axis::Y ? term.coeff : 0.0;
        double z = term.axis == ham::Axis::Z ? term.coeff : 0.0;
        c.add(qcir::Op::interact(term.u, term.v, x, y, z));
    }
    for (const auto &fl : h.fields()) {
        double angle = -2.0 * fl.coeff;
        c.add(fl.axis == ham::Axis::X   ? qcir::Op::rx(fl.q, angle)
              : fl.axis == ham::Axis::Y ? qcir::Op::ry(fl.q, angle)
                                        : qcir::Op::rz(fl.q, angle));
    }
    return c;
}

void
runUnifyAblation(Family f, int n)
{
    device::Topology topo = device::montreal27();
    std::mt19937_64 rng(instanceSeed(f, n, 0));
    qcir::Circuit raw = unUnifiedStep(f, n, rng);

    core::CompilerOptions with;
    with.seed = 42;
    core::CompilerOptions without = with;
    without.unifyCircuit = false;

    core::TqanCompiler cw(topo, with), co(topo, without);
    auto rw = cw.compile(raw);
    auto ro = co.compile(raw);
    auto mw = core::computeMetrics(rw.sched, raw,
                                   device::GateSet::Cnot);
    auto mo = core::computeMetrics(ro.sched, raw,
                                   device::GateSet::Cnot);
    printRow("ablation", familyName(f), topo.name(),
             device::GateSet::Cnot, "unify_circuit_on_raw", n, 0,
             mw);
    printRow("ablation", familyName(f), topo.name(),
             device::GateSet::Cnot, "no_circuit_unify_raw", n, 0,
             mo);
}

} // namespace

int
main(int argc, char **argv)
{
    printHeader();

    const Family fams[] = {Family::NnnHeisenberg, Family::NnnIsing,
                           Family::QaoaReg3};
    const int sizes[] = {10, 16, 22};

    for (Family f : fams) {
        for (int n : sizes) {
            core::CompilerOptions base;
            base.seed = 42;

            runConfig("full_2QAN", base, f, n);

            core::CompilerOptions o1 = base;
            o1.mapper = core::MapperKind::Anneal;
            runConfig("mapper_anneal", o1, f, n);
            core::CompilerOptions o2 = base;
            o2.mapper = core::MapperKind::Greedy;
            runConfig("mapper_greedy", o2, f, n);
            core::CompilerOptions o3 = base;
            o3.mapper = core::MapperKind::Line;
            runConfig("mapper_line", o3, f, n);
            core::CompilerOptions o4 = base;
            o4.mapper = core::MapperKind::Identity;
            runConfig("mapper_identity", o4, f, n);

            core::CompilerOptions o5 = base;
            o5.router.unifySwaps = false;
            runConfig("no_swap_unify", o5, f, n);

            core::CompilerOptions o6 = base;
            o6.hybridSchedule = false;
            runConfig("generic_scheduler", o6, f, n);

            if (f != Family::QaoaReg3)
                runUnifyAblation(f, n);
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
