/**
 * @file
 * Paper Fig. 11 / Table IV (appendix): the Sycamore architecture with
 * CZ as the hardware two-qubit gate.  Same sweep as Fig. 7 but CZ
 * counts; the headline check is that 2QAN's Heisenberg CZ count
 * stays at the NoMap level (3 CZ per pair, dressed SWAPs included).
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

int
main(int argc, char **argv)
{
    printHeader();
    runFigureSweep("fig11", "sycamore", /*gateset=*/"cz",
                   /*chainCap=*/50, /*qaoaCap=*/22,
                   /*withIcQaoa=*/false);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
