/**
 * @file
 * Shared harness for the paper-reproduction benchmarks.
 *
 * Every figure/table binary prints machine-readable rows in the
 * core/sweep.h CSV schema:
 *
 *   experiment,benchmark,device,gateset,compiler,nqubits,instance,
 *   swaps,dressed,native2q,depth2q,depthall,
 *   native2q_nomap,depth2q_nomap,depthall_nomap
 *
 * and registers google-benchmark timings of the compile passes (the
 * paper's Sec. V-D runtime evaluation rides on the same sweeps).
 * The figure sweeps are thin sweep specs executed by the
 * BatchCompiler engine, so they are also reproducible with
 * `tqan-sweep` and share its seeding convention.
 */

#ifndef TQAN_BENCH_COMMON_H
#define TQAN_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>

#include "core/backend.h"
#include "core/compiler.h"
#include "core/metrics.h"
#include "core/qaoa_layers.h"
#include "core/sweep.h"
#include "decomp/pass.h"
#include "device/devices.h"
#include "graph/random_graph.h"
#include "ham/models.h"
#include "ham/qaoa.h"
#include "ham/trotter.h"

namespace tqan {
namespace bench {

/** Benchmark family identifiers (paper Sec. IV). */
using Family = core::Benchmark;

inline std::string
familyName(Family f)
{
    return core::benchmarkName(f);
}

using core::chainSizes;
using core::qaoaSizes;

inline std::uint64_t
instanceSeed(Family f, int n, int instance)
{
    return core::sweepInstanceSeed(f, n, instance);
}

/** One Trotter-step / one-layer circuit for a family instance. */
inline qcir::Circuit
familyStep(Family f, int n, int instance, std::mt19937_64 &rng)
{
    switch (f) {
      case Family::NnnHeisenberg:
        return ham::trotterStep(ham::nnnHeisenberg(n, rng), 1.0);
      case Family::NnnXY:
        return ham::trotterStep(ham::nnnXY(n, rng), 1.0);
      case Family::NnnIsing:
        return ham::trotterStep(ham::nnnIsing(n, rng), 1.0);
      case Family::QaoaReg3: {
        auto g = graph::randomRegularGraph(n, 3, rng);
        auto h =
            ham::qaoaLayerHamiltonian(g, ham::qaoaFixedAngles(1)[0]);
        (void)instance;
        return ham::trotterStep(h, 1.0);
      }
    }
    return qcir::Circuit(n);
}

inline void
printHeader()
{
    std::printf("%s\n", core::sweepCsvHeader().c_str());
}

inline void
printRow(const std::string &experiment, const std::string &benchmark,
         const std::string &dev, device::GateSet gs,
         const std::string &compiler, int n, int instance,
         const core::CompilationMetrics &m)
{
    core::SweepRow row;
    row.experiment = experiment;
    row.benchmark = benchmark;
    row.device = dev;
    row.gateset = device::gateSetName(gs);
    row.backend = compiler;
    row.nqubits = n;
    row.instance = instance;
    row.metrics = m;
    std::printf("%s\n", core::toCsv(row).c_str());
    std::fflush(stdout);
}

/**
 * Compile one step with any registered backend ("2qan",
 * "qiskit_sabre", "tket_like", "ic_qaoa", ...) and score it the way
 * the paper scores that compiler class.
 */
inline core::CompilationMetrics
runCompiler(const std::string &backend, const qcir::Circuit &step,
            const device::Topology &topo, device::GateSet gs,
            std::uint64_t seed, core::CompileResult *out = nullptr,
            core::CompilerOptions opt = core::CompilerOptions())
{
    const core::CompilerBackend &b = core::backendByName(backend);
    core::CompileJob job;
    job.step = &step;
    job.options = opt;
    job.options.seed = seed;
    auto res = b.compile(job, topo);
    auto m = b.metrics(res, step, gs);
    if (out)
        *out = std::move(res);
    return m;
}

/**
 * The spec behind a Fig. 7/8/9/11/12 sweep for one device: the
 * three chain models plus QAOA-REG-3, each compiled by 2QAN, the
 * t|ket>-like and the SABRE baselines (+ IC-QAOA on QAOA rows when
 * `withIcQaoa`).  `gateset` empty = the device's paper gate set.
 */
inline core::SweepSpec
figureSweepSpec(const std::string &experiment,
                const std::string &deviceName,
                const std::string &gateset, int chainCap,
                int qaoaCap, bool withIcQaoa, int qaoaInstances = 10)
{
    core::SweepSpec s;
    s.experiment = experiment;
    s.devices = {{deviceName, gateset}};
    s.backends = {"2qan", "qiskit_sabre", "tket_like"};
    if (withIcQaoa)
        s.backendsFor[Family::QaoaReg3] = {
            "2qan", "qiskit_sabre", "tket_like", "ic_qaoa"};
    s.sizes = chainSizes(chainCap);
    // The paper stops the Ising sweep at 40.
    s.sizesFor[Family::NnnIsing] =
        chainSizes(std::min(chainCap, 40));
    s.sizesFor[Family::QaoaReg3] = qaoaSizes(qaoaCap);
    s.instancesFor[Family::QaoaReg3] = qaoaInstances;
    return s;
}

/**
 * Run one figure sweep through the batch engine and print its rows;
 * compile failures go to stderr.  The batch runs in per-instance
 * chunks so rows stream out as each (benchmark, size, instance) is
 * compiled — long sweeps stay watchable and `| head` keeps working.
 */
inline void
runFigureSweep(const std::string &experiment,
               const std::string &deviceName,
               const std::string &gateset, int chainCap, int qaoaCap,
               bool withIcQaoa, int qaoaInstances = 10, int jobs = 1)
{
    core::BatchCompiler bc({jobs});
    core::ExpandedSweep ex = core::expandSweep(
        figureSweepSpec(experiment, deviceName, gateset, chainCap,
                        qaoaCap, withIcQaoa, qaoaInstances));
    auto sameInstance = [&ex](size_t a, size_t b) {
        return ex.rows[a].benchmark == ex.rows[b].benchmark &&
               ex.rows[a].nqubits == ex.rows[b].nqubits &&
               ex.rows[a].instance == ex.rows[b].instance;
    };
    for (size_t lo = 0; lo < ex.jobs.size();) {
        size_t hi = lo + 1;
        while (hi < ex.jobs.size() && sameInstance(lo, hi))
            ++hi;
        std::vector<core::BatchJob> chunk(ex.jobs.begin() + lo,
                                          ex.jobs.begin() + hi);
        auto results = bc.run(chunk);
        for (size_t i = 0; i < results.size(); ++i) {
            core::SweepRow &row = ex.rows[lo + i];
            row.metrics = results[i].metrics;
            row.seconds = results[i].seconds;
            row.error = results[i].error;
            std::printf("%s\n", core::toCsv(row).c_str());
            std::fflush(stdout);
            if (!row.ok())
                std::fprintf(stderr, "%s: %s failed: %s\n",
                             experiment.c_str(),
                             row.backend.c_str(),
                             row.error.c_str());
        }
        lo = hi;
    }
}

// Multi-layer QAOA helpers live in core/qaoa_layers.h; aliased here
// for the bench binaries.
using core::qaoaMultiLayerStep;
using core::scaleQaoaLayer;
using core::tqanMultiLayerCircuit;

} // namespace bench
} // namespace tqan

#endif // TQAN_BENCH_COMMON_H
