/**
 * @file
 * Shared harness for the paper-reproduction benchmarks.
 *
 * Every figure/table binary prints machine-readable rows:
 *
 *   experiment,benchmark,device,gateset,compiler,nqubits,instance,
 *   swaps,dressed,native2q,depth2q,depthall,
 *   native2q_nomap,depth2q_nomap,depthall_nomap
 *
 * and registers google-benchmark timings of the compile passes (the
 * paper's Sec. V-D runtime evaluation rides on the same sweeps).
 * Randomness is seeded per (benchmark, size, instance) so runs are
 * reproducible.
 */

#ifndef TQAN_BENCH_COMMON_H
#define TQAN_BENCH_COMMON_H

#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <utility>

#include "core/backend.h"
#include "core/compiler.h"
#include "core/metrics.h"
#include "core/qaoa_layers.h"
#include "decomp/pass.h"
#include "device/devices.h"
#include "graph/random_graph.h"
#include "ham/models.h"
#include "ham/qaoa.h"
#include "ham/trotter.h"

namespace tqan {
namespace bench {

inline void
printHeader()
{
    std::printf(
        "experiment,benchmark,device,gateset,compiler,nqubits,"
        "instance,swaps,dressed,native2q,depth2q,depthall,"
        "native2q_nomap,depth2q_nomap,depthall_nomap\n");
}

inline void
printRow(const std::string &experiment, const std::string &benchmark,
         const std::string &dev, device::GateSet gs,
         const std::string &compiler, int n, int instance,
         const core::CompilationMetrics &m)
{
    std::printf("%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
                experiment.c_str(), benchmark.c_str(), dev.c_str(),
                device::gateSetName(gs).c_str(), compiler.c_str(), n,
                instance, m.swaps, m.dressed, m.native2q, m.depth2q,
                m.depthAll, m.native2qNoMap, m.depth2qNoMap,
                m.depthAllNoMap);
    std::fflush(stdout);
}

/** Benchmark family identifiers (paper Sec. IV). */
enum class Family { NnnHeisenberg, NnnXY, NnnIsing, QaoaReg3 };

inline const char *
familyName(Family f)
{
    switch (f) {
      case Family::NnnHeisenberg: return "NNN_Heisenberg";
      case Family::NnnXY: return "NNN_XY";
      case Family::NnnIsing: return "NNN_Ising";
      case Family::QaoaReg3: return "QAOA_REG3";
    }
    return "?";
}

/** One Trotter-step / one-layer circuit for a family instance. */
inline qcir::Circuit
familyStep(Family f, int n, int instance, std::mt19937_64 &rng)
{
    switch (f) {
      case Family::NnnHeisenberg:
        return ham::trotterStep(ham::nnnHeisenberg(n, rng), 1.0);
      case Family::NnnXY:
        return ham::trotterStep(ham::nnnXY(n, rng), 1.0);
      case Family::NnnIsing:
        return ham::trotterStep(ham::nnnIsing(n, rng), 1.0);
      case Family::QaoaReg3: {
        auto g = graph::randomRegularGraph(n, 3, rng);
        auto h =
            ham::qaoaLayerHamiltonian(g, ham::qaoaFixedAngles(1)[0]);
        (void)instance;
        return ham::trotterStep(h, 1.0);
      }
    }
    return qcir::Circuit(n);
}

inline std::uint64_t
instanceSeed(Family f, int n, int instance)
{
    return 0x5eed0000ull + static_cast<int>(f) * 104729ull +
           n * 1299709ull + instance * 15485863ull;
}

/**
 * Compile one step with any registered backend ("2qan",
 * "qiskit_sabre", "tket_like", "ic_qaoa", ...) and score it the way
 * the paper scores that compiler class.
 */
inline core::CompilationMetrics
runCompiler(const std::string &backend, const qcir::Circuit &step,
            const device::Topology &topo, device::GateSet gs,
            std::uint64_t seed, core::CompileResult *out = nullptr,
            core::CompilerOptions opt = core::CompilerOptions())
{
    const core::CompilerBackend &b = core::backendByName(backend);
    core::CompileJob job;
    job.step = &step;
    job.options = opt;
    job.options.seed = seed;
    auto res = b.compile(job, topo);
    auto m = b.metrics(res, step, gs);
    if (out)
        *out = std::move(res);
    return m;
}

/** The chain-model sizes of Fig. 7/8/9, capped per device. */
inline std::vector<int>
chainSizes(int cap)
{
    std::vector<int> s;
    for (int n = 6; n <= 26; n += 2)
        if (n <= cap)
            s.push_back(n);
    for (int n : {32, 40, 50})
        if (n <= cap)
            s.push_back(n);
    return s;
}

/** The QAOA sizes, capped per device. */
inline std::vector<int>
qaoaSizes(int cap)
{
    std::vector<int> s;
    for (int n = 4; n <= 22; n += 2)
        if (n <= cap)
            s.push_back(n);
    return s;
}

/**
 * Run the full figure sweep for one device: the three chain models
 * plus QAOA-REG-3 (10 instances per size), each compiled by 2QAN,
 * the t|ket>-like and the SABRE baselines (+ IC-QAOA on QAOA rows
 * when `withIcQaoa`).
 */
inline void
runFigureSweep(const std::string &experiment,
               const device::Topology &topo, device::GateSet gs,
               int chainCap, int qaoaCap, bool withIcQaoa,
               int qaoaInstances = 10)
{
    const Family chains[] = {Family::NnnHeisenberg, Family::NnnXY,
                             Family::NnnIsing};
    for (Family f : chains) {
        int cap = chainCap;
        if (f == Family::NnnIsing && cap > 40)
            cap = 40;  // the paper stops the Ising sweep at 40
        for (int n : chainSizes(cap)) {
            std::mt19937_64 rng(instanceSeed(f, n, 0));
            qcir::Circuit step = familyStep(f, n, 0, rng);
            auto mt =
                runCompiler("2qan", step, topo, gs,
                            instanceSeed(f, n, 1));
            printRow(experiment, familyName(f), topo.name(), gs,
                     "2QAN", n, 0, mt);
            auto ms = runCompiler("qiskit_sabre", step, topo, gs,
                                  instanceSeed(f, n, 2));
            printRow(experiment, familyName(f), topo.name(), gs,
                     "qiskit_sabre", n, 0, ms);
            auto mk = runCompiler("tket_like", step, topo, gs,
                                  instanceSeed(f, n, 3));
            printRow(experiment, familyName(f), topo.name(), gs,
                     "tket_like", n, 0, mk);
        }
    }

    for (int n : qaoaSizes(qaoaCap)) {
        for (int inst = 0; inst < qaoaInstances; ++inst) {
            std::mt19937_64 rng(
                instanceSeed(Family::QaoaReg3, n, inst));
            qcir::Circuit step =
                familyStep(Family::QaoaReg3, n, inst, rng);
            auto mt = runCompiler("2qan", step, topo, gs,
                                  instanceSeed(Family::QaoaReg3, n,
                                               100 + inst));
            printRow(experiment, "QAOA_REG3", topo.name(), gs, "2QAN",
                     n, inst, mt);
            auto ms = runCompiler("qiskit_sabre", step, topo, gs,
                                  instanceSeed(Family::QaoaReg3, n,
                                               200 + inst));
            printRow(experiment, "QAOA_REG3", topo.name(), gs,
                     "qiskit_sabre", n, inst, ms);
            auto mk = runCompiler("tket_like", step, topo, gs,
                                  instanceSeed(Family::QaoaReg3, n,
                                               300 + inst));
            printRow(experiment, "QAOA_REG3", topo.name(), gs,
                     "tket_like", n, inst, mk);
            if (withIcQaoa) {
                auto mi = runCompiler("ic_qaoa", step, topo, gs,
                                      instanceSeed(Family::QaoaReg3,
                                                   n, 400 + inst));
                printRow(experiment, "QAOA_REG3", topo.name(), gs,
                         "ic_qaoa", n, inst, mi);
            }
        }
    }
}

// Multi-layer QAOA helpers live in core/qaoa_layers.h; aliased here
// for the bench binaries.
using core::qaoaMultiLayerStep;
using core::scaleQaoaLayer;
using core::tqanMultiLayerCircuit;

} // namespace bench
} // namespace tqan

#endif // TQAN_BENCH_COMMON_H
