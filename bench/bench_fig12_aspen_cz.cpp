/**
 * @file
 * Paper Fig. 12 / Table V (appendix): the Aspen architecture with CZ
 * as the hardware two-qubit gate.
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

int
main(int argc, char **argv)
{
    printHeader();
    runFigureSweep("fig12", "aspen", /*gateset=*/"cz",
                   /*chainCap=*/16, /*qaoaCap=*/16,
                   /*withIcQaoa=*/false);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
