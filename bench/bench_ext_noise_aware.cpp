/**
 * @file
 * Extension experiment (paper Sec. VII future work): noise-aware
 * qubit placement.
 *
 * For synthetic Montreal calibrations (lognormal coupler errors
 * around the paper's reported mean), compile each workload twice --
 * noise-blind Tabu QAP vs. noise-aware Tabu QAP -- and estimate the
 * circuit success probability with the calibration-specific ESP
 * (each two-qubit unitary weighted by the error of the coupler it
 * runs on).  Expected shape: equal or fewer gates on bad couplers,
 * hence higher ESP, at (near) unchanged SWAP counts.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common.h"
#include "decomp/native_count.h"
#include "device/noise_map.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

/** Calibration-specific gate-error ESP of a mapped circuit. */
double
calibratedGateEsp(const qcir::Circuit &device,
                  const device::NoiseMap &nm)
{
    double logp = 0.0;
    for (const auto &op : device.ops()) {
        if (!op.isTwoQubit())
            continue;
        int k = decomp::nativeCountOp(op, device::GateSet::Cnot);
        logp +=
            k * std::log(1.0 - nm.edgeError(op.q0, op.q1));
    }
    return std::exp(logp);
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("experiment,benchmark,nqubits,calibration,"
                "esp_blind,esp_aware,swaps_blind,swaps_aware\n");

    device::Topology topo = device::montreal27();
    for (int n : {10, 14, 18}) {
        for (int cal = 0; cal < 5; ++cal) {
            std::mt19937_64 nrng(1000 + cal);
            auto nm = std::make_shared<device::NoiseMap>(
                device::NoiseMap::synthetic(topo, nrng));

            std::mt19937_64 hrng(
                instanceSeed(Family::NnnHeisenberg, n, cal));
            auto step =
                familyStep(Family::NnnHeisenberg, n, cal, hrng);

            core::CompilerOptions blind;
            blind.seed = 55 + cal;
            core::CompilerOptions aware = blind;
            aware.noiseMap = nm;
            aware.noiseLambda = 2.0;

            core::TqanCompiler cb(topo, blind), ca(topo, aware);
            auto rb = cb.compile(step);
            auto ra = ca.compile(step);

            std::printf(
                "ext_noise,NNN_Heisenberg,%d,%d,%.4f,%.4f,%d,%d\n",
                n, cal,
                calibratedGateEsp(rb.sched.deviceCircuit, *nm),
                calibratedGateEsp(ra.sched.deviceCircuit, *nm),
                rb.sched.swapCount, ra.sched.swapCount);
            std::fflush(stdout);
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
