/**
 * @file
 * Paper Tables I and II: average and maximum compilation-overhead
 * reduction of 2QAN versus the t|ket>-like router (Table I,
 * vs_tket_like rows) and the SABRE/Qiskit router (Table II,
 * vs_qiskit_sabre rows), per benchmark family and device.
 *
 * The whole grid is the built-in "table1_table2" sweep preset run
 * through the batch engine and aggregated by core::aggregateTables
 * (`tqan-sweep --preset table1_table2 --tables-only` prints the same
 * rows).  overhead(compiler) = metric(compiler) - metric(NoMap) for
 * gate counts and depths, and the raw SWAP count for SWAPs; the
 * reduction is overhead(baseline) / overhead(2QAN).  Rows where 2QAN
 * has zero overhead print "inf" (the paper prints '-' and calls the
 * overhead negligible).
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

int
main(int argc, char **argv)
{
    int jobs = 1;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--jobs")
            jobs = std::atoi(argv[i + 1]);

    core::BatchCompiler bc({jobs});
    auto rows =
        core::runSweep(core::sweepPreset("table1_table2"), bc);
    for (const auto &row : rows)
        if (!row.ok())
            std::fprintf(stderr, "table1_table2: %s failed: %s\n",
                         row.backend.c_str(), row.error.c_str());

    std::printf("%s\n", core::sweepTableCsvHeader().c_str());
    for (const auto &t : core::aggregateTables(
             rows, "2qan", {"tket_like", "qiskit_sabre"}))
        std::printf("%s\n", core::toCsv(t).c_str());

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
