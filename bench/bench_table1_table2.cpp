/**
 * @file
 * Paper Tables I and II: average and maximum compilation-overhead
 * reduction of 2QAN versus the t|ket>-like router (Table I) and the
 * SABRE/Qiskit router (Table II), per benchmark family and device.
 *
 * overhead(compiler) = metric(compiler) - metric(NoMap) for gate
 * counts and depths, and the raw SWAP count for SWAPs; the reduction
 * is overhead(baseline) / overhead(2QAN).  Rows where 2QAN has zero
 * overhead print "inf" (the paper prints '-' and calls the overhead
 * negligible).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <vector>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

struct Agg
{
    std::vector<double> swap_ratio;
    std::vector<double> gate_ratio;
    std::vector<double> depth_ratio;
};

void
accumulate(Agg &agg, const core::CompilationMetrics &base,
           const core::CompilationMetrics &tq)
{
    auto ratio = [](double num, double den) {
        if (den <= 0.0)
            return num > 0.0 ? std::numeric_limits<double>::infinity()
                             : 1.0;
        return num / den;
    };
    agg.swap_ratio.push_back(ratio(base.swaps, tq.swaps));
    agg.gate_ratio.push_back(
        ratio(base.gateOverhead(), tq.gateOverhead()));
    agg.depth_ratio.push_back(
        ratio(base.depth2qOverhead(), tq.depth2qOverhead()));
}

std::pair<double, double>
avgMax(const std::vector<double> &v)
{
    double sum = 0.0, mx = 0.0;
    int finite = 0;
    for (double x : v) {
        if (std::isfinite(x)) {
            sum += x;
            mx = std::max(mx, x);
            ++finite;
        }
    }
    if (finite == 0)
        return {std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::infinity()};
    return {sum / finite, mx};
}

void
printAgg(const char *table, const char *base, const char *fam,
         const char *dev, const Agg &agg)
{
    auto [sa, sm] = avgMax(agg.swap_ratio);
    auto [ga, gm] = avgMax(agg.gate_ratio);
    auto [da, dm] = avgMax(agg.depth_ratio);
    std::printf("%s,%s,%s,%s,swaps,%.2f,%.2f\n", table, base, fam,
                dev, sa, sm);
    std::printf("%s,%s,%s,%s,gates,%.2f,%.2f\n", table, base, fam,
                dev, ga, gm);
    std::printf("%s,%s,%s,%s,depth2q,%.2f,%.2f\n", table, base, fam,
                dev, da, dm);
    std::fflush(stdout);
}

void
runDevice(const device::Topology &topo, device::GateSet gs,
          int chainCap, int qaoaCap)
{
    const Family fams[] = {Family::NnnHeisenberg, Family::NnnXY,
                           Family::NnnIsing, Family::QaoaReg3};
    for (Family f : fams) {
        Agg vs_tket, vs_sabre;
        std::vector<std::pair<int, int>> configs;  // (n, instance)
        if (f == Family::QaoaReg3) {
            for (int n : qaoaSizes(qaoaCap))
                for (int i = 0; i < 5; ++i)
                    configs.push_back({n, i});
        } else {
            int cap = f == Family::NnnIsing ? std::min(chainCap, 40)
                                            : chainCap;
            for (int n : chainSizes(cap))
                configs.push_back({n, 0});
        }
        for (auto [n, inst] : configs) {
            std::mt19937_64 rng(instanceSeed(f, n, inst));
            qcir::Circuit step = familyStep(f, n, inst, rng);
            auto tq =
                runCompiler("2qan", step, topo, gs, instanceSeed(f, n, 1000 + inst));
            auto sb = runCompiler("qiskit_sabre", step, topo, gs,
                                  instanceSeed(f, n, 2000 + inst));
            auto tk = runCompiler("tket_like", step, topo, gs,
                                  instanceSeed(f, n, 3000 + inst));
            accumulate(vs_tket, tk, tq);
            accumulate(vs_sabre, sb, tq);
        }
        printAgg("table1_vs_tket", "tket_like", familyName(f),
                 topo.name().c_str(), vs_tket);
        printAgg("table2_vs_qiskit", "qiskit_sabre", familyName(f),
                 topo.name().c_str(), vs_sabre);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf(
        "table,baseline,benchmark,device,metric,avg_reduction,"
        "max_reduction\n");
    runDevice(device::sycamore54(), device::GateSet::Syc, 50, 22);
    runDevice(device::aspen16(), device::GateSet::ISwap, 16, 16);
    runDevice(device::montreal27(), device::GateSet::Cnot, 26, 22);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
