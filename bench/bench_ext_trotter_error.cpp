/**
 * @file
 * Extension experiment (paper Sec. VII future work): how does the
 * operator-order freedom interact with the Trotter error?
 *
 * The paper compiles the first Trotter step and reverses the
 * two-qubit order for even steps (noting this mimics second-order
 * Trotterization), and cites randomized product formulas as future
 * work.  Here we measure the actual state error of four orderings on
 * an 8-qubit NNN Heisenberg model as a function of the step count r:
 *
 *   fixed        : same term order every step (plain first order)
 *   reversed     : 2QAN's forward/backward alternation
 *   second_order : the symmetric formula of Eq. 2
 *   randomized   : fresh uniformly random order per step
 *
 * Error = 1 - |<psi_exact | psi_formula>| with psi_exact from a very
 * fine reference formula.  Expected shape: reversed ~ second-order
 * (both quadratically better than fixed), randomized between.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.h"
#include "sim/statevector.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

sim::Statevector
runCircuit(const qcir::Circuit &c, int n)
{
    sim::Statevector psi(n);
    // Nontrivial product start state.
    for (int q = 0; q < n; q += 2)
        psi.applyPauli(q, 'X');
    for (int q = 0; q < n; ++q)
        psi.apply1q(q, linalg::ry(0.3 + 0.1 * q));
    psi.applyCircuit(c);
    return psi;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("experiment,benchmark,ordering,r,state_error\n");

    const int n = 8;
    const double t = 0.7;
    std::mt19937_64 rng(0x7207);
    auto h = ham::nnnHeisenberg(n, rng);

    sim::Statevector exact =
        runCircuit(ham::trotterCircuit(h, t, 1024, false), n);

    for (int r : {2, 4, 8, 16, 32}) {
        auto err = [&](const qcir::Circuit &c) {
            return 1.0 - runCircuit(c, n).fidelityWith(exact);
        };
        std::printf("ext_trotter,NNN_Heisenberg,fixed,%d,%.3e\n", r,
                    err(ham::trotterCircuit(h, t, r, false)));
        std::printf("ext_trotter,NNN_Heisenberg,reversed,%d,%.3e\n",
                    r, err(ham::trotterCircuit(h, t, r, true)));
        std::printf(
            "ext_trotter,NNN_Heisenberg,second_order,%d,%.3e\n", r,
            err(ham::secondOrderTrotterCircuit(h, t, r)));
        std::mt19937_64 r2(77);
        std::printf(
            "ext_trotter,NNN_Heisenberg,randomized,%d,%.3e\n", r,
            err(ham::randomizedTrotterCircuit(h, t, r, r2)));
        std::fflush(stdout);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
