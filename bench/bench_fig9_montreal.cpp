/**
 * @file
 * Paper Fig. 9: one-layer NNN Heisenberg / XY / Ising (n = 6..26)
 * and QAOA-REG-3 (n = 4..22, with the IC-QAOA comparator) on IBMQ
 * Montreal with the CNOT gate set.
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

void
BM_TqanCompileMontreal(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    device::Topology topo = device::montreal27();
    std::mt19937_64 rng(instanceSeed(Family::NnnIsing, n, 0));
    qcir::Circuit step = familyStep(Family::NnnIsing, n, 0, rng);
    core::CompileResult res;
    for (auto _ : state) {
        auto m = runCompiler("2qan", step, topo, device::GateSet::Cnot,
                         instanceSeed(Family::NnnIsing, n, 1), &res);
        benchmark::DoNotOptimize(m);
    }
    state.counters["swaps"] = res.sched.swapCount;
    state.counters["map_s"] = res.mappingSeconds;
    state.counters["route_s"] = res.routingSeconds;
    state.counters["sched_s"] = res.schedulingSeconds;
}

BENCHMARK(BM_TqanCompileMontreal)
    ->Arg(10)
    ->Arg(18)
    ->Arg(26)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    bool table_only = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--table-only")
            table_only = true;

    printHeader();
    runFigureSweep("fig9", "montreal", /*gateset=*/"",
                   /*chainCap=*/26, /*qaoaCap=*/22,
                   /*withIcQaoa=*/true);

    if (!table_only) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }
    return 0;
}
