/**
 * @file
 * Paper Sec. V-D: compiler runtime and scalability.  google-benchmark
 * timings of the three passes (Tabu QAP mapping, permutation-aware
 * routing, hybrid scheduling) versus problem size; the paper reports
 * Tabu as the dominant cost (seconds to minutes in Python -- our C++
 * implementation is much faster, the *scaling* is the claim) and
 * quadratic routing/scheduling.
 */

#include <benchmark/benchmark.h>

#include "common.h"
#include "qap/tabu.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

void
BM_TabuMapping(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    device::Topology topo = device::sycamore54();
    std::mt19937_64 rng(instanceSeed(Family::NnnHeisenberg, n, 0));
    auto h = ham::nnnHeisenberg(n, rng);
    auto flow = qap::flowMatrix(h);
    for (auto _ : state) {
        std::mt19937_64 r2(7);
        auto p = qap::tabuSearchQap(flow, topo, r2);
        benchmark::DoNotOptimize(p);
    }
}

void
BM_Routing(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    device::Topology topo = device::sycamore54();
    std::mt19937_64 rng(instanceSeed(Family::NnnHeisenberg, n, 0));
    auto h = ham::nnnHeisenberg(n, rng);
    auto step = ham::trotterStep(h, 1.0);
    auto flow = qap::flowMatrix(h);
    std::mt19937_64 r2(7);
    auto place = qap::tabuSearchQap(flow, topo, r2);
    for (auto _ : state) {
        std::mt19937_64 r3(9);
        auto r = core::routePermutationAware(step, place, topo, r3);
        benchmark::DoNotOptimize(r);
    }
}

void
BM_Scheduling(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    device::Topology topo = device::sycamore54();
    std::mt19937_64 rng(instanceSeed(Family::NnnHeisenberg, n, 0));
    auto h = ham::nnnHeisenberg(n, rng);
    auto step = ham::trotterStep(h, 1.0);
    auto flow = qap::flowMatrix(h);
    std::mt19937_64 r2(7);
    auto place = qap::tabuSearchQap(flow, topo, r2);
    std::mt19937_64 r3(9);
    auto routing =
        core::routePermutationAware(step, place, topo, r3);
    for (auto _ : state) {
        auto s = core::scheduleHybridAlap(step, topo, routing);
        benchmark::DoNotOptimize(s);
    }
}

void
BM_FullCompile(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    device::Topology topo = device::sycamore54();
    std::mt19937_64 rng(instanceSeed(Family::NnnHeisenberg, n, 0));
    auto step = familyStep(Family::NnnHeisenberg, n, 0, rng);
    for (auto _ : state) {
        auto m = runCompiler("2qan", step, topo, device::GateSet::Syc, 11);
        benchmark::DoNotOptimize(m);
    }
}

BENCHMARK(BM_TabuMapping)->DenseRange(10, 50, 10)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Routing)->DenseRange(10, 50, 10)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Scheduling)->DenseRange(10, 50, 10)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_FullCompile)->DenseRange(10, 50, 20)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
