/**
 * @file
 * Paper Fig. 10: application performance <C>/C_min of QAOA-REG-3
 * with p = 1, 2, 3 layers compiled to IBMQ Montreal, under the
 * calibrated Montreal noise model (the hardware substitute described
 * in DESIGN.md).
 *
 * For each instance and compiler we report:
 *  - the noiseless ratio at the fixed angles (exact statevector for
 *    n <= 16; for larger n the instance-averaged n = 16 value, valid
 *    because the p <= 3 light cone makes the edge expectation size-
 *    independent on random 3-regular graphs),
 *  - the ESP of the compiled circuit (gate counts + depth + T1/T2),
 *  - the modelled noisy ratio  ESP * noiseless,
 *  - for n <= 8, a stochastic-Pauli trajectory cross-check on the
 *    CNOT-decomposed compiled circuit.
 *
 * Expected shape (paper): 2QAN's curve is highest everywhere and
 * reaches the random-guess level (0) at much larger n than t|ket>,
 * Qiskit and IC-QAOA.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "common.h"
#include "decomp/pass.h"
#include "sim/qaoa_eval.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

struct Compiled
{
    qcir::Circuit device;     // full p-layer circuit with H prep
    qap::Placement initial;   // logical -> device at t = 0
    qap::Placement final_map; // logical -> device at measurement
};

/** Prepend the |+>^n layer under the initial map. */
qcir::Circuit
withPrep(const qcir::Circuit &c, const qap::Placement &initial)
{
    qcir::Circuit out(c.numQubits());
    for (int dq : initial)
        out.add(qcir::Op::u1q(dq, linalg::hadamard()));
    out.append(c);
    return out;
}

Compiled
compileTqan(const graph::Graph &g,
            const std::vector<ham::QaoaAngles> &angles,
            const device::Topology &topo, std::uint64_t seed)
{
    auto layer1 = ham::trotterStep(
        ham::qaoaLayerHamiltonian(g, angles[0]), 1.0);
    core::CompileResult res;
    runCompiler("2qan", layer1, topo, device::GateSet::Cnot, seed, &res);
    Compiled c;
    c.initial = res.sched.initialMap;
    c.final_map = angles.size() % 2 == 1 ? res.sched.finalMap
                                         : res.sched.initialMap;
    c.device = withPrep(tqanMultiLayerCircuit(res, angles),
                        c.initial);
    return c;
}

Compiled
compileBaseline(const std::string &name, const graph::Graph &g,
                const std::vector<ham::QaoaAngles> &angles,
                const device::Topology &topo, std::uint64_t seed)
{
    qcir::Circuit full = qaoaMultiLayerStep(g, angles);
    core::CompileJob job;
    job.step = &full;
    job.options.seed = seed;
    auto r = core::backendByName(name).compile(job, topo);
    Compiled c;
    c.initial = r.sched.initialMap;
    c.final_map = r.sched.finalMap;
    c.device = withPrep(r.sched.deviceCircuit, c.initial);
    return c;
}

double
evaluate(const Compiled &c, const graph::Graph &g,
         const sim::NoiseModel &nm, double noiseless, double *esp_out,
         double *traj_out, std::uint64_t seed)
{
    // ESP from the CNOT-expanded circuit.
    qcir::Circuit expanded =
        decomp::expandForMetrics(c.device, device::GateSet::Cnot);
    auto cost = sim::tallyCircuit(expanded, g.numNodes());
    double e = sim::esp(cost, nm);
    *esp_out = e;

    *traj_out = std::nan("");
    if (g.numNodes() <= 8) {
        // Trajectory cross-check on the decomposed circuit.
        qcir::Circuit hw = decomp::decomposeToCnot(c.device);
        std::vector<int> qmap;
        qcir::Circuit compact = sim::compactCircuit(hw, qmap);
        if (compact.numQubits() <= 14) {
            std::vector<graph::Edge> edges;
            for (const auto &[u, v] : g.edges())
                edges.push_back({qmap[c.final_map[u]],
                                 qmap[c.final_map[v]]});
            int cmin = g.numEdges() - 2 * ham::maxCut(g);
            std::mt19937_64 rng(seed);
            *traj_out = sim::trajectoryRatio(compact, edges, cmin,
                                             nm, 60, rng);
        }
    }
    return e * noiseless;
}

} // namespace

int
main(int argc, char **argv)
{
    bool exact_all = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--exact")
            exact_all = true;

    std::printf("experiment,benchmark,device,compiler,nqubits,"
                "instance,p,noiseless,esp,ratio_model,ratio_traj\n");

    device::Topology topo = device::montreal27();
    sim::NoiseModel nm = sim::montrealNoise();
    const char *compilers[] = {"2QAN", "qiskit_sabre", "tket_like",
                               "ic_qaoa"};

    // Light-cone reference ratios from n = 16 (per p).
    std::map<int, double> lightcone;
    for (int p = 1; p <= 3; ++p) {
        double acc = 0.0;
        for (int inst = 0; inst < 5; ++inst) {
            std::mt19937_64 rng(
                instanceSeed(Family::QaoaReg3, 16, 40 + inst));
            auto g = graph::randomRegularGraph(16, 3, rng);
            acc += sim::noiselessRatio(g, ham::qaoaFixedAngles(p));
        }
        lightcone[p] = acc / 5.0;
    }

    for (int n = 4; n <= 22; n += 2) {
        for (int inst = 0; inst < 10; ++inst) {
            std::mt19937_64 rng(
                instanceSeed(Family::QaoaReg3, n, inst));
            auto g = graph::randomRegularGraph(n, 3, rng);
            for (int p = 1; p <= 3; ++p) {
                auto angles = ham::qaoaFixedAngles(p);
                double noiseless =
                    (n <= 16 || exact_all)
                        ? sim::noiselessRatio(g, angles)
                        : lightcone[p];

                for (const char *name : compilers) {
                    std::uint64_t seed =
                        instanceSeed(Family::QaoaReg3, n,
                                     1000 * p + inst) ^
                        std::hash<std::string>{}(name);
                    Compiled c =
                        std::string(name) == "2QAN"
                            ? compileTqan(g, angles, topo, seed)
                            : compileBaseline(name, g, angles, topo,
                                              seed);
                    double esp = 0.0, traj = 0.0;
                    double model = evaluate(c, g, nm, noiseless,
                                            &esp, &traj, seed);
                    std::printf("fig10,QAOA_REG3,montreal27,%s,%d,"
                                "%d,%d,%.4f,%.4f,%.4f,%.4f\n",
                                name, n, inst, p, noiseless, esp,
                                model, traj);
                    std::fflush(stdout);
                }
            }
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
