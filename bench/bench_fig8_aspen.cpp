/**
 * @file
 * Paper Fig. 8: one-layer NNN Heisenberg / XY / Ising (n = 6..16)
 * and QAOA-REG-3 (n = 4..16) on Rigetti Aspen with the iSWAP gate
 * set: SWAP count, iSWAP count and iSWAP depth per compiler.
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace tqan;
using namespace tqan::bench;

namespace {

void
BM_TqanCompileAspen(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    device::Topology topo = device::aspen16();
    std::mt19937_64 rng(instanceSeed(Family::NnnXY, n, 0));
    qcir::Circuit step = familyStep(Family::NnnXY, n, 0, rng);
    core::CompileResult res;
    for (auto _ : state) {
        auto m = runCompiler("2qan", step, topo, device::GateSet::ISwap,
                         instanceSeed(Family::NnnXY, n, 1), &res);
        benchmark::DoNotOptimize(m);
    }
    state.counters["swaps"] = res.sched.swapCount;
    state.counters["map_s"] = res.mappingSeconds;
    state.counters["route_s"] = res.routingSeconds;
}

BENCHMARK(BM_TqanCompileAspen)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    bool table_only = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--table-only")
            table_only = true;

    printHeader();
    runFigureSweep("fig8", "aspen", /*gateset=*/"",
                   /*chainCap=*/16, /*qaoaCap=*/16,
                   /*withIcQaoa=*/false);

    if (!table_only) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }
    return 0;
}
